//! The generic network server running on the SmartNIC (§4.2).

use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::time::Duration;

use lynx_device::{profile_for, BluefieldProfile, CostProfile, CpuKind};
use lynx_net::{ConnId, HostStack, SockAddr};
use lynx_sim::{Histogram, Payload, Sim, SiteCounter, SiteGauge, Telemetry, Time, TraceEvent};

use crate::cache::{CacheConfig, CacheOp, CacheProtocol, SnicCache, SnicKernel};
use crate::control::{ControlConfig, ScaleDecision, SvcControl};
use crate::pipeline::{Pipeline, PipelineConfig, StagedRequest};
use crate::tenancy::{FnId, Tenancy, TenancyStats, TenantCacheMode};
use crate::{DispatchPolicy, Dispatcher, Error, Mqueue, RemoteMqManager, ReturnAddr};

/// Where the Lynx server logic runs — selects core counts and cost models
/// for the paper's evaluated configurations (§6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnicPlatform {
    /// Mellanox BlueField: 7 ARM A72 cores with the VMA user-level stack.
    Bluefield,
    /// The same Lynx code running on `n` host Xeon cores ("Lynx on the
    /// host CPU: runs the same code as on Bluefield").
    HostCores(usize),
}

impl SnicPlatform {
    /// Number of cores running the Lynx pipeline.
    pub fn cores(self) -> usize {
        match self {
            SnicPlatform::Bluefield => BluefieldProfile::LYNX_CORES,
            SnicPlatform::HostCores(n) => n,
        }
    }

    /// The CPU kind of those cores.
    pub fn cpu_kind(self) -> CpuKind {
        match self {
            SnicPlatform::Bluefield => CpuKind::ArmA72,
            SnicPlatform::HostCores(_) => CpuKind::XeonE5,
        }
    }
}

impl fmt::Display for SnicPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnicPlatform::Bluefield => f.write_str("Bluefield"),
            SnicPlatform::HostCores(1) => f.write_str("1 Xeon core"),
            SnicPlatform::HostCores(n) => write!(f, "{n} Xeon cores"),
        }
    }
}

/// Per-message CPU costs of the Lynx server logic itself (in addition to
/// protocol-stack costs charged by [`HostStack`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Message Dispatcher work per request.
    pub dispatch: Duration,
    /// Message Forwarder work per response.
    pub forward: Duration,
    /// Marginal dispatcher work per *additional* request in a batched
    /// drain: the first request of a batch pays the full [`dispatch`]
    /// cost (stack invocation, WQE setup, doorbell), each further one
    /// only this increment ([`crate::BatchPolicy`]).
    ///
    /// [`dispatch`]: CostModel::dispatch
    pub dispatch_marginal: Duration,
    /// Marginal forwarder work per additional response in a batched
    /// collection.
    pub forward_marginal: Duration,
    /// Round-robin scan cost, per registered mqueue, added to both paths.
    pub scan_per_mqueue: Duration,
    /// Detection latency per mqueue in the forwarder's poll cycle
    /// (RDMA-bound, platform-independent; average delay is half a cycle).
    pub poll_rtt_per_mqueue: Duration,
    /// Provisioning delay when the elastic control plane unparks a
    /// remote worker (persistent-kernel spin-up).
    pub provision: Duration,
}

impl CostModel {
    /// Compiles a typed [`CostProfile`] into the flat per-message cost
    /// table the hot path reads — the profile's values verbatim, so a
    /// profile-built server is byte-identical to a const-built one.
    pub fn from_profile(p: &dyn CostProfile) -> CostModel {
        CostModel {
            dispatch: p.dispatch_cost(),
            forward: p.forward_cost(),
            dispatch_marginal: p.dispatch_marginal(),
            forward_marginal: p.forward_marginal(),
            scan_per_mqueue: p.mq_scan(),
            poll_rtt_per_mqueue: p.mq_poll_rtt(),
            provision: p.provision_cost(),
        }
    }

    /// Cost model for the given CPU kind (the platform profile selected
    /// by [`lynx_device::profile_for`]).
    pub fn for_cpu(kind: CpuKind) -> CostModel {
        CostModel::from_profile(profile_for(kind))
    }
}

/// The SNIC health monitor's policy (§4.2 extended with fault recovery).
///
/// The monitor periodically scans every registered server mqueue; a queue
/// with requests in flight that has produced no response for
/// `stall_threshold` is *quarantined* — removed from its service's dispatch
/// set so traffic redistributes to the surviving accelerators. A
/// quarantined queue that resumes making progress (or fully drains) is
/// re-admitted. The scan is armed lazily on the first request and disarms
/// while no healthy queue has work, so an idle simulation still runs to
/// completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Master switch. Disabled monitors never schedule anything.
    pub enabled: bool,
    /// Interval between health scans.
    pub scan_interval: Duration,
    /// How long a queue may hold in-flight requests without producing a
    /// response before it is declared stalled.
    pub stall_threshold: Duration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            enabled: true,
            scan_interval: Duration::from_micros(250),
            stall_threshold: Duration::from_micros(2500),
        }
    }
}

impl RecoveryConfig {
    /// A configuration with the monitor switched off (the behaviour of the
    /// pre-recovery server).
    pub fn disabled() -> RecoveryConfig {
        RecoveryConfig {
            enabled: false,
            ..RecoveryConfig::default()
        }
    }
}

/// End-to-end counters of a [`LynxServer`].
///
/// Read through [`LynxServer::stats`]; since the counters live in the
/// server's telemetry registry (shared with the simulation's registry when
/// telemetry is enabled), this view can never disagree with the exported
/// counter set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests that reached the dispatcher.
    pub requests: u64,
    /// Requests delivered into an mqueue.
    pub dispatched: u64,
    /// Requests dropped (all eligible mqueues full).
    pub dropped: u64,
    /// Responses sent back to clients.
    pub responses: u64,
    /// Backend calls bridged from client mqueues.
    pub backend_calls: u64,
}

/// Counters of the SNIC-resident hot-key cache and the on-NIC compute
/// offload, read through [`LynxServer::cache_stats`] from the same
/// telemetry registry the interned `cache.*` / `snic.compute.*` counters
/// land in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// GETs answered from the SNIC cache (including stale answers served
    /// under degradation).
    pub hits: u64,
    /// Cacheable GETs that took the accelerator path.
    pub misses: u64,
    /// Responses that populated the cache on the forward path.
    pub fills: u64,
    /// Cached entries marked stale by write-through SETs.
    pub invalidations: u64,
    /// Requests answered by the [`SnicKernel`] on spare SNIC cycles.
    pub offloaded: u64,
    /// Simulated SNIC-core nanoseconds spent in offloaded kernels.
    pub offload_cycles: u64,
}

impl CacheStats {
    /// Cache hit rate over classified GETs (`hits / (hits + misses)`),
    /// or 0 when no GET was seen.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct BackendBridge {
    conn: Option<ConnId>,
    queued: Vec<Payload>,
}

/// Pre-interned handles for the server-wide per-message counters. Each
/// name is interned into the server's telemetry registry on its first
/// increment; after that every request/response is an indexed add.
#[derive(Debug, Default)]
struct ServerSites {
    requests: SiteCounter,
    dispatched: SiteCounter,
    dropped: SiteCounter,
    replies: SiteCounter,
    unroutable: SiteCounter,
    backend_calls: SiteCounter,
    shed: SiteCounter,
    forward_polls: SiteCounter,
    batches: SiteCounter,
    batched_msgs: SiteCounter,
    forward_batches: SiteCounter,
    forward_batched_msgs: SiteCounter,
    cache_hits: SiteCounter,
    cache_misses: SiteCounter,
    cache_fills: SiteCounter,
    cache_invalidations: SiteCounter,
    cache_bytes: SiteGauge,
    snic_offloaded: SiteCounter,
    snic_cycles: SiteCounter,
    tenancy_matched: SiteCounter,
    tenancy_unmatched: SiteCounter,
    tenancy_shed: SiteCounter,
    tenancy_cold: SiteCounter,
    tenancy_evictions: SiteCounter,
    tenancy_deferred: SiteCounter,
    tenancy_resident_fns: SiteGauge,
    tenancy_resident_bytes: SiteGauge,
}

/// Per-service counter handles (`server.svc<i>.*` and the dispatcher's
/// `dispatch.picks.<policy>`) — the `format!`-built names are produced
/// once per service instead of once per message.
#[derive(Debug, Default)]
struct SvcSites {
    requests: SiteCounter,
    dispatched: SiteCounter,
    dropped: SiteCounter,
    replies: SiteCounter,
    shed: SiteCounter,
    picks: SiteCounter,
}

/// Identifier of one tenant service hosted by a [`LynxServer`] (§4.5:
/// "Lynx runtime can be shared among multiple servers ... while ensuring
/// full state protection among them").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ServiceId(pub usize);

impl ServiceId {
    /// The default service every [`LynxServer`] starts with.
    pub const DEFAULT: ServiceId = ServiceId(0);
}

/// Health-scan state for one server mqueue.
struct QueueHealth {
    last_responses: u64,
    last_progress: Time,
    /// The per-queue request↔response FIFO has lost an entry (a request
    /// was quarantined or a response gave up post-acceptance), so path
    /// and latency matching is suspended until the queue fully drains —
    /// a misaligned pop would pair a response with the wrong request and
    /// fill the cache under the wrong key.
    path_lost: bool,
}

/// Where a cacheable GET miss's response should land: the lane cache, the
/// namespaced key, and the fill lease taken at miss time (see
/// [`SnicCache::begin_fill`] — a SET dispatched while the miss is in
/// flight voids the lease, so the pre-SET response cannot resurrect).
struct FillSlot {
    lane: usize,
    key: Vec<u8>,
    token: u64,
}

/// One accelerator-path request in flight: when it was dispatched and,
/// for cacheable GET misses, where its response should be cached.
struct PathEntry {
    at: Time,
    fill: Option<FillSlot>,
}

/// What the dispatch-stage cache consult decided for one request.
enum CacheOutcome {
    /// Fresh cached value: reply from the SNIC, skip the mqueue.
    Hit(Payload),
    /// Take the accelerator path; `Some` carries the leased cache slot a
    /// cacheable response should fill on the way back.
    Miss(Option<FillSlot>),
}

struct Service {
    dispatcher: Dispatcher,
    mqs: Vec<Mqueue>,
    owners: Vec<Rc<RemoteMqManager>>,
    health: Vec<QueueHealth>,
    udp_port: Option<u16>,
    sites: SvcSites,
    control: SvcControl,
    /// Per-queue FIFO matching accelerator-path requests to their
    /// responses (mqueues complete in order), maintained only when the
    /// cache or path-latency tracking is on.
    path: Vec<VecDeque<PathEntry>>,
    /// Dispatch→collect latency of accelerator-path (miss) requests,
    /// recorded when [`CacheConfig::track_path_latency`] is set.
    miss_path: Histogram,
    /// Per-queue FIFO of the tenant function behind each accelerator-path
    /// request (mqueues complete in order), maintained only when the
    /// tenancy stage is on: collection releases the function's in-flight
    /// slot, which is what gates deferred residency eviction.
    tfifo: Vec<VecDeque<u32>>,
}

impl Service {
    fn new(policy: DispatchPolicy, admission_burst: f64) -> Service {
        Service {
            dispatcher: Dispatcher::new(policy),
            mqs: Vec::new(),
            owners: Vec::new(),
            health: Vec::new(),
            udp_port: None,
            sites: SvcSites::default(),
            control: SvcControl::new(admission_burst),
            path: Vec::new(),
            miss_path: Histogram::new(),
            tfifo: Vec::new(),
        }
    }
}

/// Cache keys are namespaced by tenant service — and, when the tenancy
/// stage matched a registered function, by that function — so two tenants
/// using the same application keys never collide in a shared lane cache.
fn cache_key(service: ServiceId, func: Option<FnId>, key: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(8 + key.len());
    k.extend_from_slice(&(service.0 as u32).to_le_bytes());
    if let Some(f) = func {
        k.extend_from_slice(&f.0.to_le_bytes());
    }
    k.extend_from_slice(key);
    k
}

struct Inner {
    stack: HostStack,
    costs: CostModel,
    services: Vec<Service>,
    accels: Vec<Rc<RemoteMqManager>>,
    backends: Vec<Rc<RefCell<BackendBridge>>>,
    stats: Telemetry,
    recovery: RecoveryConfig,
    monitor_armed: bool,
    control: ControlConfig,
    control_armed: bool,
    /// Lazily parks the over-provisioned fleet on the first control scan
    /// arm, so construction stays side-effect free.
    control_initialized: bool,
    pipeline: Pipeline,
    sites: ServerSites,
    /// One `pipeline.core<i>.dispatched` handle per pipeline core.
    core_dispatched: Vec<SiteCounter>,
    cache_cfg: CacheConfig,
    /// Wire-format classifier for the cache (application-supplied).
    protocol: Option<Rc<dyn CacheProtocol>>,
    /// One private hot-key cache per pipeline lane (shared-nothing,
    /// matching the dispatch sharding). Empty when the cache is off.
    caches: Vec<SnicCache>,
    /// On-NIC compute kernel and the mean mqueue occupancy at which it
    /// engages.
    snic_kernel: Option<(Rc<dyn SnicKernel>, f64)>,
    /// λ-NIC-style match-action tenancy stage (`lynx_core::tenancy`):
    /// function registry, per-tenant admission and LRU residency. `None`
    /// (or a disabled config) leaves the request path exactly as before.
    tenancy: Option<Tenancy>,
    /// Last tenancy-stats snapshot mirrored into the telemetry counters —
    /// the delta source for `tenancy.*`.
    tenancy_seen: TenancyStats,
}

impl Inner {
    /// Whether per-request path entries must be recorded (the cache
    /// needs them for fills, the latency histogram for the miss tail).
    fn track_path(&self) -> bool {
        self.cache_cfg.enabled || self.cache_cfg.track_path_latency
    }

    /// Whether the tenancy match-action stage gates requests.
    fn tenancy_on(&self) -> bool {
        self.tenancy.as_ref().is_some_and(Tenancy::enabled)
    }

    /// Re-matches a payload to its tenant function (requests past the
    /// gate always match; O(1) on the registry's key table).
    fn tenancy_func(&self, payload: &[u8]) -> Option<FnId> {
        self.tenancy
            .as_ref()
            .filter(|t| t.enabled())
            .and_then(|t| t.match_request(payload))
    }

    /// Releases one in-flight tenancy slot for the function behind
    /// `payload` (request answered at the SNIC, dropped or rejected).
    fn tenancy_complete_payload(&mut self, payload: &[u8]) {
        let Some(func) = self.tenancy_func(payload) else {
            return;
        };
        if let Some(t) = self.tenancy.as_mut() {
            t.complete(func);
        }
        self.sync_tenancy();
    }

    /// Mirrors the tenancy runtime's cumulative stats into the interned
    /// `tenancy.*` telemetry sites. Delta-based against the last snapshot,
    /// so it can run at every gate/complete site and counters stay
    /// monotonic and exact.
    fn sync_tenancy(&mut self) {
        let Some(cur) = self.tenancy.as_ref().map(Tenancy::stats) else {
            return;
        };
        let prev = self.tenancy_seen;
        if cur == prev {
            return;
        }
        let sites = &self.sites;
        let stats = &self.stats;
        if cur.matched > prev.matched {
            sites
                .tenancy_matched
                .add(stats, "tenancy.matched", cur.matched - prev.matched);
        }
        if cur.unmatched > prev.unmatched {
            sites
                .tenancy_unmatched
                .add(stats, "tenancy.unmatched", cur.unmatched - prev.unmatched);
        }
        if cur.shed > prev.shed {
            sites
                .tenancy_shed
                .add(stats, "tenancy.shed", cur.shed - prev.shed);
        }
        if cur.cold_starts > prev.cold_starts {
            sites.tenancy_cold.add(
                stats,
                "tenancy.cold_starts",
                cur.cold_starts - prev.cold_starts,
            );
        }
        if cur.evictions > prev.evictions {
            sites
                .tenancy_evictions
                .add(stats, "tenancy.evictions", cur.evictions - prev.evictions);
        }
        if cur.evictions_deferred > prev.evictions_deferred {
            sites.tenancy_deferred.add(
                stats,
                "tenancy.evictions_deferred",
                cur.evictions_deferred - prev.evictions_deferred,
            );
        }
        sites.tenancy_resident_fns.set_with(
            stats,
            || "tenancy.resident_fns".to_string(),
            cur.resident_fns as f64,
        );
        sites.tenancy_resident_bytes.set_with(
            stats,
            || "tenancy.resident_bytes".to_string(),
            cur.resident_bytes as f64,
        );
        self.tenancy_seen = cur;
    }
}

/// Outcome of the tenancy match-action gate for one request.
enum TenancyGate {
    /// No stage installed, or matched a warm admitted function: dispatch
    /// proceeds immediately.
    Pass,
    /// Matched a cold (or still-warming) function: dispatch proceeds
    /// after this warm-up delay elapses on the simulated clock.
    Warm(Duration),
    /// Unmatched, or over the tenant's quota: answer with the empty
    /// shed marker and stop.
    Shed,
}

/// The Lynx network server: the application-agnostic frontend on the
/// SmartNIC (or, for comparison, on host cores).
///
/// It listens on UDP/TCP ports, dispatches each request to a server mqueue
/// via one-sided RDMA, collects responses and sends them back, and bridges
/// client mqueues to backend services. "No application development is
/// necessary for the SNIC" — the same server code serves every workload in
/// the benchmarks.
///
/// Construct it with [`crate::LynxServerBuilder`] — the sole construction
/// path since 0.3.0 (the deprecated imperative `new` / `add_*` /
/// `listen_*` shims of 0.2 have been removed; see `CHANGELOG.md`).
///
/// # Batched multi-core pipeline
///
/// The dispatcher/forwarder runs as a sharded pipeline configured by
/// [`PipelineConfig`] ([`crate::LynxServerBuilder::snic_cores`] /
/// [`crate::LynxServerBuilder::batch`]): requests shard across `N`
/// simulated SNIC cores by client key and each core drains its partition
/// in batches, amortizing stack invocations, RDMA doorbells and mqueue
/// completions. With the default configuration (1 core, unbatched) the
/// server takes the exact legacy immediate-dispatch path.
#[derive(Clone)]
pub struct LynxServer {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for LynxServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("LynxServer")
            .field("services", &inner.services.len())
            .field(
                "mqueues",
                &inner.services.iter().map(|s| s.mqs.len()).sum::<usize>(),
            )
            .field("accelerators", &inner.accels.len())
            .field("recovery", &inner.recovery.enabled)
            .finish()
    }
}

impl LynxServer {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn construct(
        stack: HostStack,
        costs: CostModel,
        policy: DispatchPolicy,
        recovery: RecoveryConfig,
        control: ControlConfig,
        stats: Telemetry,
        pipeline: PipelineConfig,
        cache_cfg: CacheConfig,
        protocol: Option<Rc<dyn CacheProtocol>>,
        snic_kernel: Option<(Rc<dyn SnicKernel>, f64)>,
        tenancy: Option<Tenancy>,
    ) -> LynxServer {
        let core_dispatched = (0..pipeline.snic_cores)
            .map(|_| SiteCounter::new())
            .collect();
        let caches = if cache_cfg.enabled {
            (0..pipeline.snic_cores)
                .map(|_| SnicCache::new(cache_cfg.bytes_per_lane))
                .collect()
        } else {
            Vec::new()
        };
        LynxServer {
            inner: Rc::new(RefCell::new(Inner {
                stack,
                costs,
                services: vec![Service::new(policy, control.admission_burst)],
                accels: Vec::new(),
                backends: Vec::new(),
                stats,
                recovery,
                monitor_armed: false,
                control,
                control_armed: false,
                control_initialized: false,
                pipeline: Pipeline::new(pipeline),
                sites: ServerSites::default(),
                core_dispatched,
                cache_cfg,
                protocol,
                caches,
                snic_kernel,
                tenancy,
                tenancy_seen: TenancyStats::default(),
            })),
        }
    }

    pub(crate) fn inner_add_service(&self, policy: DispatchPolicy) -> ServiceId {
        let mut inner = self.inner.borrow_mut();
        let burst = inner.control.admission_burst;
        inner.services.push(Service::new(policy, burst));
        ServiceId(inner.services.len() - 1)
    }

    /// Number of tenant services.
    pub fn services(&self) -> usize {
        self.inner.borrow().services.len()
    }

    pub(crate) fn inner_add_accelerator(&self, rmq: RemoteMqManager) -> usize {
        let mut inner = self.inner.borrow_mut();
        inner.accels.push(Rc::new(rmq));
        inner.accels.len() - 1
    }

    pub(crate) fn inner_add_server_mqueue(&self, service: ServiceId, accel: usize, mq: Mqueue) {
        let (rmq, fwd_core, qi) = {
            let mut inner = self.inner.borrow_mut();
            // Forwarder ownership: mqueues round-robin across the pipeline
            // cores by registration order, so each core polls its own
            // partition of queues.
            let fwd_core =
                Self::total_mqueues(&inner) as usize % inner.pipeline.config().snic_cores;
            let rmq = Rc::clone(&inner.accels[accel]);
            // Unify counting: the queue's drop counter lands in the same
            // registry as the server's own counters.
            mq.bind_stats(&inner.stats);
            let svc = &mut inner.services[service.0];
            svc.mqs.push(mq.clone());
            svc.owners.push(Rc::clone(&rmq));
            svc.health.push(QueueHealth {
                last_responses: 0,
                last_progress: Time::ZERO,
                path_lost: false,
            });
            svc.control.pending.push(VecDeque::new());
            svc.path.push(VecDeque::new());
            svc.tfifo.push(VecDeque::new());
            (rmq, fwd_core, svc.mqs.len() - 1)
        };
        let this = self.clone();
        let mq2 = mq.clone();
        // One forward cycle may be pending per mqueue; the gate coalesces
        // doorbell rings into it (batched mode only).
        let gate = Rc::new(Cell::new(false));
        mq.set_tx_watcher(move |sim| {
            this.on_response_ready(
                sim,
                service,
                qi,
                mq2.clone(),
                Rc::clone(&rmq),
                Rc::clone(&gate),
                fwd_core,
            );
        });
    }

    pub(crate) fn inner_add_backend_bridge(
        &self,
        sim: &mut Sim,
        accel: usize,
        mq: Mqueue,
        dst: SockAddr,
    ) {
        let (stack, rmq) = {
            let inner = self.inner.borrow();
            (inner.stack.clone(), Rc::clone(&inner.accels[accel]))
        };
        let bridge = Rc::new(RefCell::new(BackendBridge {
            conn: None,
            queued: Vec::new(),
        }));
        self.inner.borrow_mut().backends.push(Rc::clone(&bridge));

        // Backend responses -> client mqueue RX ring.
        let this = self.clone();
        let mq_rx = mq.clone();
        let rmq_rx = Rc::clone(&rmq);
        let on_msg = move |sim: &mut Sim, _conn: ConnId, payload: Payload| {
            this.on_backend_response(sim, mq_rx.clone(), Rc::clone(&rmq_rx), payload);
        };
        let bridge2 = Rc::clone(&bridge);
        let stack2 = stack.clone();
        let on_connected = move |sim: &mut Sim, conn: ConnId| {
            let queued = {
                let mut b = bridge2.borrow_mut();
                b.conn = Some(conn);
                std::mem::take(&mut b.queued)
            };
            for msg in queued {
                stack2.send_tcp(sim, conn, msg);
            }
        };
        stack.connect_tcp(sim, dst, on_msg, on_connected);

        // Accelerator sends on the client mqueue -> forward to backend.
        let this = self.clone();
        let mq2 = mq.clone();
        mq.set_tx_watcher(move |sim| {
            this.on_backend_call(sim, mq2.clone(), Rc::clone(&rmq), Rc::clone(&bridge));
        });
    }

    pub(crate) fn inner_listen_udp(&self, service: ServiceId, port: u16) {
        let stack = {
            let mut inner = self.inner.borrow_mut();
            inner.services[service.0].udp_port.get_or_insert(port);
            inner.stack.clone()
        };
        let this = self.clone();
        stack.bind_udp(port, move |sim, dgram| {
            let key = hash_client(&dgram.src);
            this.on_request(sim, service, ReturnAddr::Udp(dgram.src), key, dgram.payload);
        });
    }

    pub(crate) fn inner_listen_tcp(&self, service: ServiceId, port: u16) {
        let stack = self.inner.borrow().stack.clone();
        let this = self.clone();
        stack.listen_tcp(port, move |sim, conn, payload| {
            let mut h = DefaultHasher::new();
            conn.hash(&mut h);
            this.on_request(sim, service, ReturnAddr::Tcp(conn), h.finish(), payload);
        });
    }

    /// Aggregate counters across all tenant services, read from the
    /// server's telemetry registry.
    pub fn stats(&self) -> ServerStats {
        let inner = self.inner.borrow();
        let t = &inner.stats;
        ServerStats {
            requests: t.counter("server.requests"),
            dispatched: t.counter("server.dispatched"),
            dropped: t.counter("server.dropped"),
            responses: t.counter("server.replies"),
            backend_calls: t.counter("server.backend_calls"),
        }
    }

    /// Counters of one tenant service (its `backend_calls` is always 0;
    /// backend bridges are accounted at the server level). Reads the
    /// `server.svc<i>.*` counters of the telemetry registry.
    pub fn service_stats(&self, service: ServiceId) -> ServerStats {
        let inner = self.inner.borrow();
        assert!(service.0 < inner.services.len(), "unknown service id");
        let t = &inner.stats;
        let i = service.0;
        ServerStats {
            requests: t.counter(&format!("server.svc{i}.requests")),
            dispatched: t.counter(&format!("server.svc{i}.dispatched")),
            dropped: t.counter(&format!("server.svc{i}.dropped")),
            responses: t.counter(&format!("server.svc{i}.replies")),
            backend_calls: 0,
        }
    }

    /// Total mqueue-level drops across all registered server mqueues.
    pub fn mqueue_drops(&self) -> u64 {
        self.inner
            .borrow()
            .services
            .iter()
            .flat_map(|s| s.mqs.iter())
            .map(|m| m.drops())
            .sum()
    }

    /// The active recovery policy.
    pub fn recovery(&self) -> RecoveryConfig {
        self.inner.borrow().recovery
    }

    /// The active pipeline configuration (sharding + batching).
    pub fn pipeline(&self) -> PipelineConfig {
        self.inner.borrow().pipeline.config()
    }

    /// The active elastic control-plane policy.
    pub fn control(&self) -> ControlConfig {
        self.inner.borrow().control
    }

    /// Number of *active* (not parked) remote-GPU workers of `service`.
    ///
    /// With the control plane disabled this is simply the number of
    /// registered server mqueues; with it enabled, the autoscaler moves
    /// this between [`ControlConfig::min_workers`] and
    /// [`ControlConfig::max_workers`]. Before the first request arrives
    /// the whole fleet reads as active — parking happens lazily on the
    /// first control scan.
    pub fn active_workers(&self, service: ServiceId) -> usize {
        let inner = self.inner.borrow();
        assert!(service.0 < inner.services.len(), "unknown service id");
        let svc = &inner.services[service.0];
        svc.mqs.len() - svc.dispatcher.parked_count()
    }

    /// Requests rejected by admission control (the `dispatch.shed`
    /// counter), read from the telemetry registry.
    pub fn shed_requests(&self) -> u64 {
        self.inner.borrow().stats.counter("dispatch.shed")
    }

    /// Replies that could not be routed back to a client (no return
    /// address / no bound UDP port), read from the telemetry registry.
    pub fn unroutable_replies(&self) -> u64 {
        self.inner.borrow().stats.counter("server.unroutable")
    }

    /// Counters of the hot-key cache and SNIC-compute offload, read from
    /// the telemetry registry (`cache.*`, `snic.compute.*`).
    pub fn cache_stats(&self) -> CacheStats {
        let inner = self.inner.borrow();
        let t = &inner.stats;
        CacheStats {
            hits: t.counter("cache.hits"),
            misses: t.counter("cache.misses"),
            fills: t.counter("cache.fills"),
            invalidations: t.counter("cache.invalidations"),
            offloaded: t.counter("snic.compute.offloaded"),
            offload_cycles: t.counter("snic.compute.cycles"),
        }
    }

    /// Bytes currently held across every lane's hot-key cache.
    pub fn cache_bytes(&self) -> usize {
        self.inner.borrow().caches.iter().map(|c| c.bytes()).sum()
    }

    /// Counters of the tenancy match-action stage (zeroed when no stage
    /// is installed). The same values are mirrored into the `tenancy.*`
    /// telemetry counters.
    pub fn tenancy_stats(&self) -> TenancyStats {
        self.inner
            .borrow()
            .tenancy
            .as_ref()
            .map(Tenancy::stats)
            .unwrap_or_default()
    }

    /// Whether a registered tenant function currently holds accelerator
    /// memory (resident or warming). `false` when no tenancy stage is
    /// installed.
    pub fn tenancy_resident(&self, func: FnId) -> bool {
        self.inner
            .borrow()
            .tenancy
            .as_ref()
            .is_some_and(|t| t.is_resident(func))
    }

    /// Whether `service` is currently degraded to cache-only answers
    /// (serve-stale-on-overload; see
    /// [`ControlConfig::degrade_occupancy`]).
    pub fn degraded(&self, service: ServiceId) -> bool {
        let inner = self.inner.borrow();
        assert!(service.0 < inner.services.len(), "unknown service id");
        inner.services[service.0].control.degrade.active
    }

    /// Degradation switch flips so far: `(engaged, recovered)` — the
    /// `control.degrade_on` / `control.degrade_off` counters.
    pub fn degrade_transitions(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (
            inner.stats.counter("control.degrade_on"),
            inner.stats.counter("control.degrade_off"),
        )
    }

    /// p99 of the dispatch→collect latency over requests that took the
    /// accelerator (miss) path, when
    /// [`CacheConfig::track_path_latency`] is on. `None` before any
    /// such request completed. Cache-on and cache-off runs can compare
    /// this tail like-for-like: cache hits never enter it.
    pub fn miss_path_p99(&self, service: ServiceId) -> Option<Duration> {
        let inner = self.inner.borrow();
        assert!(service.0 < inner.services.len(), "unknown service id");
        inner.services[service.0].miss_path.try_percentile(99.0)
    }

    /// Number of currently quarantined mqueues across all services.
    pub fn quarantined_queues(&self) -> usize {
        self.inner
            .borrow()
            .services
            .iter()
            .map(|s| s.dispatcher.quarantined_count())
            .sum()
    }

    fn total_mqueues(inner: &Inner) -> u32 {
        inner.services.iter().map(|s| s.mqs.len() as u32).sum()
    }

    /// The dispatcher and forwarder scan every registered mqueue of every
    /// tenant, so the per-message scan cost grows with the server-wide
    /// queue count — tenants share the SNIC's cores.
    fn dispatch_cost(inner: &Inner) -> Duration {
        inner.costs.dispatch + inner.costs.scan_per_mqueue * Self::total_mqueues(inner)
    }

    fn forward_cost(inner: &Inner) -> Duration {
        inner.costs.forward + inner.costs.scan_per_mqueue * Self::total_mqueues(inner)
    }

    // --- SNIC-resident hot-key cache & compute offload -------------------

    /// Dispatch-stage cache consult for one request on lane `lane`
    /// (before any mqueue slot or RDMA verb is allocated). Lookup and
    /// fill bookkeeping are folded into the already-charged dispatch
    /// cost: the cache lives in the dispatcher's working set, so the
    /// simulation charges no separate time for it.
    fn consult_cache(
        inner: &mut Inner,
        service: ServiceId,
        lane: usize,
        payload: &[u8],
    ) -> CacheOutcome {
        if !inner.cache_cfg.enabled {
            return CacheOutcome::Miss(None);
        }
        let Some(protocol) = inner.protocol.clone() else {
            return CacheOutcome::Miss(None);
        };
        // Tenancy composition: a matched function either partitions the
        // cache under its own key namespace or bypasses it entirely.
        let func = inner.tenancy_func(payload);
        if let Some(f) = func {
            let bypass = inner
                .tenancy
                .as_ref()
                .is_some_and(|t| t.registry().spec(f).cache == TenantCacheMode::Bypass);
            if bypass {
                return CacheOutcome::Miss(None);
            }
        }
        match protocol.classify(payload) {
            CacheOp::Get(key) => {
                let ckey = cache_key(service, func, &key);
                let resp = inner.caches[lane].lookup(&ckey, false).map(<[u8]>::to_vec);
                match resp {
                    Some(r) => {
                        inner.sites.cache_hits.add(&inner.stats, "cache.hits", 1);
                        CacheOutcome::Hit(Payload::from(r))
                    }
                    None => {
                        inner
                            .sites
                            .cache_misses
                            .add(&inner.stats, "cache.misses", 1);
                        // Lease the slot now: a SET racing the round trip
                        // voids the lease, so the response cannot install
                        // the overwritten value (memcached-style lease).
                        // While another miss for the key is in flight no
                        // lease is granted — this response is served but
                        // not cached.
                        let fill = inner.caches[lane].begin_fill(&ckey).map(|token| FillSlot {
                            lane,
                            key: ckey,
                            token,
                        });
                        CacheOutcome::Miss(fill)
                    }
                }
            }
            CacheOp::Set(key) => {
                // Write-through: the SET still goes to the accelerator;
                // every lane's cached copy goes stale immediately, so no
                // fresh read can observe the overwritten value.
                let ckey = cache_key(service, func, &key);
                let mut n = 0u64;
                for c in inner.caches.iter_mut() {
                    if c.invalidate(&ckey) {
                        n += 1;
                    }
                }
                if n > 0 {
                    inner
                        .sites
                        .cache_invalidations
                        .add(&inner.stats, "cache.invalidations", n);
                }
                CacheOutcome::Miss(None)
            }
            CacheOp::Other => CacheOutcome::Miss(None),
        }
    }

    /// Releases a leased fill slot whose response will never arrive
    /// (request dropped, offloaded, rejected by the transport, or its
    /// path entry discarded). A no-op for non-cacheable requests.
    fn release_fill(inner: &mut Inner, fill: Option<FillSlot>) {
        if let Some(f) = fill {
            inner.caches[f.lane].abandon_fill(&f.key, f.token);
        }
    }

    /// Discards all request↔response matching state for queue `qi` of
    /// service `i` and taints the queue: entries already recorded can no
    /// longer be trusted to line up with the responses still in flight,
    /// so matching stays suspended (no new entries recorded, collected
    /// responses unmatched) until the queue fully drains — the only
    /// point where the FIFO pairing is known-good again.
    fn reset_queue_path(inner: &mut Inner, i: usize, qi: usize) {
        let svc = &mut inner.services[i];
        let was_tainted = svc.health[qi].path_lost;
        let fills: Vec<Option<FillSlot>> = svc.path[qi].drain(..).map(|e| e.fill).collect();
        svc.control.pending[qi].clear();
        // Orphaned tenant dispatches can no longer be paired with their
        // completions: release their in-flight slots now so residency
        // eviction is not wedged by a desynced queue.
        let funcs: Vec<u32> = svc
            .tfifo
            .get_mut(qi)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default();
        svc.health[qi].path_lost = true;
        for fill in fills {
            Self::release_fill(inner, fill);
        }
        if !funcs.is_empty() {
            if let Some(t) = inner.tenancy.as_mut() {
                for f in funcs {
                    t.complete(FnId(f));
                }
            }
            inner.sync_tenancy();
        }
        if !was_tainted {
            inner.stats.count("server.path_resets", 1);
        }
    }

    /// Serve-stale lookup for a degraded service, ahead of admission
    /// control. Returns `true` when the request was answered from the
    /// cache (nothing further to do).
    ///
    /// A degraded answer is not free: the classify + lookup runs in the
    /// dispatch stage like any other consult, so the full dispatch cost
    /// is charged on the request's lane before the reply goes out —
    /// mirroring [`Self::consult_cache`]'s cost story. Degraded-mode
    /// simulated throughput therefore stays bounded by the same SNIC CPU
    /// model as normal-mode hits.
    fn try_degraded_hit(
        &self,
        sim: &mut Sim,
        service: ServiceId,
        ret: ReturnAddr,
        key: u64,
        payload: &Payload,
    ) -> bool {
        let (resp, stack, cost, lane, batched) = {
            let mut inner = self.inner.borrow_mut();
            if !inner.cache_cfg.enabled || !inner.services[service.0].control.degrade.active {
                return false;
            }
            let Some(protocol) = inner.protocol.clone() else {
                return false;
            };
            let CacheOp::Get(k) = protocol.classify(payload) else {
                return false;
            };
            // Tenancy composition mirrors the normal consult: a bypass
            // function never gets stale answers; partitioned functions
            // look up under their own namespace.
            let func = inner.tenancy_func(payload);
            if let Some(f) = func {
                let bypass = inner
                    .tenancy
                    .as_ref()
                    .is_some_and(|t| t.registry().spec(f).cache == TenantCacheMode::Bypass);
                if bypass {
                    return false;
                }
            }
            let ckey = cache_key(service, func, &k);
            let lane = inner.pipeline.config().shard_of(key);
            let resp = match inner.caches[lane].lookup(&ckey, true).map(<[u8]>::to_vec) {
                Some(r) => {
                    inner.sites.cache_hits.add(&inner.stats, "cache.hits", 1);
                    r
                }
                // A degraded-mode miss is not counted here: the request
                // continues to admission and, if admitted, the normal
                // dispatch consult counts it once.
                None => return false,
            };
            (
                resp,
                inner.stack.clone(),
                Self::dispatch_cost(&inner),
                lane,
                inner.pipeline.config().is_batched(),
            )
        };
        let this = self.clone();
        let payload = Payload::from(resp);
        if batched {
            stack.charge_on(sim, lane, cost, move |sim| {
                this.send_reply(sim, service, ret, payload);
            });
        } else {
            stack.charge(sim, cost, move |sim| {
                this.send_reply(sim, service, ret, payload);
            });
        }
        true
    }

    /// Mean mqueue occupancy over the service's unparked queues — the
    /// "mqueues backing up" signal the compute offload engages on. A
    /// fully parked fleet reads as saturated.
    fn occupancy(inner: &Inner, service: ServiceId) -> f64 {
        let svc = &inner.services[service.0];
        let active: Vec<usize> = (0..svc.mqs.len())
            .filter(|&qi| !svc.dispatcher.is_parked(qi))
            .collect();
        if active.is_empty() {
            return if svc.mqs.is_empty() { 0.0 } else { 1.0 };
        }
        active
            .iter()
            .map(|&qi| svc.mqs[qi].in_flight() as f64 / svc.mqs[qi].config().slots as f64)
            .sum::<f64>()
            / active.len() as f64
    }

    /// Offers one request to the SNIC compute kernel when the service's
    /// mqueues are backed up. Returns the kernel's response and its
    /// SNIC-core cost (to be charged by the caller against the lane's
    /// CPU model) — or `None` to take the accelerator path.
    fn try_offload(
        inner: &mut Inner,
        service: ServiceId,
        payload: &[u8],
    ) -> Option<(Payload, Duration)> {
        let (kernel, min_occupancy) = inner.snic_kernel.clone()?;
        if Self::occupancy(inner, service) < min_occupancy {
            return None;
        }
        let out = kernel.execute(payload)?;
        let work = kernel.work(payload);
        inner
            .sites
            .snic_offloaded
            .add(&inner.stats, "snic.compute.offloaded", 1);
        inner
            .sites
            .snic_cycles
            .add(&inner.stats, "snic.compute.cycles", work.as_nanos() as u64);
        Some((Payload::from(out), work))
    }

    fn on_request(
        &self,
        sim: &mut Sim,
        service: ServiceId,
        ret: ReturnAddr,
        key: u64,
        payload: Payload,
    ) {
        {
            let inner = self.inner.borrow();
            inner.sites.requests.add(&inner.stats, "server.requests", 1);
            let i = service.0;
            inner.services[i].sites.requests.add_with(
                &inner.stats,
                || format!("server.svc{i}.requests"),
                1,
            );
        }
        self.arm_control(sim);
        // Serve-stale degradation: a degraded service answers cacheable
        // reads straight from the SNIC cache — stale entries included —
        // *before* the token bucket sees them, so hot-key traffic keeps
        // flowing while the bucket sheds the accelerator-bound remainder.
        if self.try_degraded_hit(sim, service, ret, key, &payload) {
            return;
        }
        if let Err(e) = self.try_admit(sim, service) {
            debug_assert!(matches!(e, Error::Overloaded { .. }));
            // Early reject: no dispatch cost charged, no RDMA verb issued.
            // The empty (0-byte) reply is the shed marker — closed-loop
            // clients observe it instead of timing out on silence.
            self.send_reply(sim, service, ret, Payload::from(Vec::new()));
            return;
        }
        // λ-NIC match-action stage: match the payload to a registered
        // tenant function and enforce its quota and residency — after the
        // service-wide token bucket, before any dispatch cost.
        match self.tenancy_gate(sim, service, &payload) {
            TenancyGate::Pass => {}
            TenancyGate::Shed => {
                // Unmatched or over the tenant's quota: the empty reply is
                // the same shed marker admission control uses.
                self.send_reply(sim, service, ret, Payload::from(Vec::new()));
                return;
            }
            TenancyGate::Warm(delay) => {
                // Cold start: the function's state loads on the
                // accelerator for `delay`; dispatch proceeds once warm.
                // Pure simulated wall time — no SNIC core is held.
                let this = self.clone();
                sim.schedule_in(delay, move |sim| {
                    this.dispatch_admitted(sim, service, ret, key, payload);
                });
                return;
            }
        }
        self.dispatch_admitted(sim, service, ret, key, payload);
    }

    /// The post-admission half of the request path: stage into the
    /// batched pipeline or charge the legacy immediate dispatch. Split
    /// from [`Self::on_request`] so a cold start can delay exactly this
    /// part.
    fn dispatch_admitted(
        &self,
        sim: &mut Sim,
        service: ServiceId,
        ret: ReturnAddr,
        key: u64,
        payload: Payload,
    ) {
        let (batched, stack, cost) = {
            let inner = self.inner.borrow();
            (
                inner.pipeline.config().is_batched(),
                inner.stack.clone(),
                Self::dispatch_cost(&inner),
            )
        };
        self.arm_monitor(sim);
        if !batched {
            // Legacy immediate dispatch on the shared core pool — the
            // exact pre-pipeline event sequence.
            let this = self.clone();
            stack.charge(sim, cost, move |sim| {
                this.dispatch_now(sim, service, ret, key, payload);
            });
            return;
        }
        // Batched pipeline: shard to a core, stage, and kick that core's
        // drain cycle if none is pending.
        let (core, start) = {
            let inner = self.inner.borrow();
            let core = inner.pipeline.config().shard_of(key);
            let start = inner.pipeline.stage(
                core,
                StagedRequest {
                    service,
                    ret,
                    key,
                    payload,
                },
            );
            (core, start)
        };
        if start {
            self.drain_cycle(sim, core);
        }
    }

    /// One drain cycle of pipeline core `core`, phase 1: charge the
    /// round-robin mqueue scan (paid once per cycle — the amortization the
    /// batch exists for), pinned to the core's own stack lane.
    fn drain_cycle(&self, sim: &mut Sim, core: usize) {
        let (stack, scan) = {
            let inner = self.inner.borrow();
            (
                inner.stack.clone(),
                inner.costs.scan_per_mqueue * Self::total_mqueues(&inner),
            )
        };
        let this = self.clone();
        stack.charge_on(sim, core, scan, move |sim| {
            this.drain_batch(sim, core);
        });
    }

    /// Drain cycle phase 2: take the batch that accumulated during the
    /// scan, charge the amortized dispatch cost (full cost for the first
    /// message, marginal for the rest), then dispatch the whole batch.
    fn drain_batch(&self, sim: &mut Sim, core: usize) {
        let (stack, cost, batch) = {
            let inner = self.inner.borrow();
            let batch = inner.pipeline.take_batch(core);
            if batch.is_empty() {
                let _ = inner.pipeline.end_drain(core);
                return;
            }
            let k = batch.len() as u32;
            inner.sites.batches.add(&inner.stats, "pipeline.batches", 1);
            inner
                .sites
                .batched_msgs
                .add(&inner.stats, "pipeline.batched_msgs", u64::from(k));
            inner.core_dispatched[core].add_with(
                &inner.stats,
                || format!("pipeline.core{core}.dispatched"),
                u64::from(k),
            );
            let cost = inner.costs.dispatch + inner.costs.dispatch_marginal * (k - 1);
            (inner.stack.clone(), cost, batch)
        };
        let this = self.clone();
        stack.charge_on(sim, core, cost, move |sim| {
            this.dispatch_batch(sim, core, batch);
            let more = this.inner.borrow().pipeline.end_drain(core);
            if more {
                this.drain_cycle(sim, core);
            }
        });
    }

    /// Dispatches a drained batch: per-message mqueue selection (same
    /// counters and traces as the unbatched path), then one coalesced
    /// [`RemoteMqManager::push_requests`] per target mqueue — a batch of
    /// `k` requests to one queue costs one doorbell, not `k`.
    fn dispatch_batch(&self, sim: &mut Sim, core: usize, batch: Vec<StagedRequest>) {
        struct Group {
            service: ServiceId,
            qi: usize,
            rmq: Rc<RemoteMqManager>,
            mq: Mqueue,
            items: Vec<(ReturnAddr, Payload)>,
            fills: Vec<Option<FillSlot>>,
            // Tenant function behind each item, resolved before payload
            // ownership moves to the transport.
            funcs: Vec<Option<FnId>>,
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut traces: Vec<(&'static str, Option<String>)> = Vec::new();
        // SNIC-local answers produced at the dispatch stage: cache hits
        // go back on the batched UDP reply path; offloaded kernels first
        // charge their accumulated work on this core's lane.
        let mut hits: Vec<(ServiceId, ReturnAddr, Payload)> = Vec::new();
        let mut offloads: Vec<(ServiceId, ReturnAddr, Payload)> = Vec::new();
        let mut offload_work = Duration::ZERO;
        {
            let mut inner = self.inner.borrow_mut();
            for req in batch {
                // The staged batch all sharded here by key, so this
                // core's private cache is the request's cache lane.
                match Self::consult_cache(&mut inner, req.service, core, &req.payload) {
                    CacheOutcome::Hit(resp) => {
                        // Answered at the SNIC: release the tenant's
                        // in-flight slot here, nothing will complete it.
                        inner.tenancy_complete_payload(&req.payload);
                        hits.push((req.service, req.ret, resp));
                        continue;
                    }
                    CacheOutcome::Miss(fill) => {
                        if let Some((resp, work)) =
                            Self::try_offload(&mut inner, req.service, &req.payload)
                        {
                            // The kernel answers instead of the
                            // accelerator: no response will fill.
                            Self::release_fill(&mut inner, fill);
                            inner.tenancy_complete_payload(&req.payload);
                            offload_work += work;
                            offloads.push((req.service, req.ret, resp));
                            continue;
                        }
                        let func = inner.tenancy_func(&req.payload);
                        let i = req.service.0;
                        let svc = &mut inner.services[i];
                        let policy = svc.dispatcher.policy().name();
                        let picked = svc
                            .dispatcher
                            .pick(&svc.mqs, req.key)
                            .map(|qi| (qi, Rc::clone(&svc.owners[qi]), svc.mqs[qi].clone()));
                        Self::count_dispatch(&inner, i, policy, picked.is_some());
                        match picked {
                            Some((qi, rmq, mq)) => {
                                let label = mq.label();
                                traces.push((policy, Some(label.clone())));
                                match groups.iter_mut().find(|g| g.mq.label() == label) {
                                    Some(g) => {
                                        g.items.push((req.ret, req.payload));
                                        g.fills.push(fill);
                                        g.funcs.push(func);
                                    }
                                    None => groups.push(Group {
                                        service: req.service,
                                        qi,
                                        rmq,
                                        mq,
                                        items: vec![(req.ret, req.payload)],
                                        fills: vec![fill],
                                        funcs: vec![func],
                                    }),
                                }
                            }
                            None => {
                                // Dropped (all queues full): no response
                                // will ever fill the leased slot or
                                // complete the tenant's dispatch.
                                Self::release_fill(&mut inner, fill);
                                inner.tenancy_complete_payload(&req.payload);
                                traces.push((policy, None));
                            }
                        }
                    }
                }
            }
        }
        for (policy, queue) in traces {
            sim.trace(|| TraceEvent::Dispatch { policy, queue });
        }
        if !hits.is_empty() {
            // One batched stack invocation per service, like the
            // forwarder's reply path.
            let mut by_svc: Vec<(ServiceId, Vec<(ReturnAddr, Payload)>)> = Vec::new();
            for (svc, ret, resp) in hits {
                match by_svc.iter_mut().find(|(s, _)| *s == svc) {
                    Some((_, v)) => v.push((ret, resp)),
                    None => by_svc.push((svc, vec![(ret, resp)])),
                }
            }
            for (svc, replies) in by_svc {
                self.send_replies(sim, svc, replies);
            }
        }
        if !offloads.is_empty() {
            let stack = self.inner.borrow().stack.clone();
            let this = self.clone();
            stack.charge_on(sim, core, offload_work, move |sim| {
                for (svc, ret, resp) in offloads {
                    this.send_reply(sim, svc, ret, resp);
                }
            });
        }
        for g in groups {
            // Per-item backpressure/transport outcomes were already
            // counted (drops on the mqueue sink, giveups by the retry
            // machinery); a failed item never aborts the batch.
            let results = g.rmq.push_requests(sim, &g.mq, g.items);
            let now = sim.now();
            let mut accepted = 0;
            for ((result, fill), func) in results.iter().zip(g.fills).zip(g.funcs) {
                if result.is_ok() {
                    accepted += 1;
                    self.note_path(now, g.service, g.qi, fill);
                    self.note_tenancy(g.service, g.qi, func);
                } else {
                    // Rejected by backpressure/transport: the leased slot
                    // will never see a response, and no completion will
                    // release the tenant's in-flight slot.
                    let mut inner = self.inner.borrow_mut();
                    Self::release_fill(&mut inner, fill);
                    if let (Some(f), Some(t)) = (func, inner.tenancy.as_mut()) {
                        t.complete(f);
                    }
                    inner.sync_tenancy();
                }
            }
            self.note_dispatched(now, g.service, g.qi, accepted);
        }
    }

    /// Counts one dispatch decision on the pre-interned handles:
    /// `dispatch.picks.<policy>`, `server.<outcome>` and
    /// `server.svc<i>.<outcome>`.
    fn count_dispatch(inner: &Inner, service: usize, policy: &'static str, dispatched: bool) {
        let svc = &inner.services[service];
        svc.sites
            .picks
            .add_with(&inner.stats, || format!("dispatch.picks.{policy}"), 1);
        if dispatched {
            inner
                .sites
                .dispatched
                .add(&inner.stats, "server.dispatched", 1);
            svc.sites.dispatched.add_with(
                &inner.stats,
                || format!("server.svc{service}.dispatched"),
                1,
            );
        } else {
            inner.sites.dropped.add(&inner.stats, "server.dropped", 1);
            svc.sites
                .dropped
                .add_with(&inner.stats, || format!("server.svc{service}.dropped"), 1);
        }
    }

    fn dispatch_now(
        &self,
        sim: &mut Sim,
        service: ServiceId,
        ret: ReturnAddr,
        key: u64,
        payload: Payload,
    ) {
        enum Fast {
            CacheHit(Payload),
            Offload(Payload, Duration),
        }
        let (fast, fill) = {
            let mut inner = self.inner.borrow_mut();
            let lane = inner.pipeline.config().shard_of(key);
            match Self::consult_cache(&mut inner, service, lane, &payload) {
                CacheOutcome::Hit(resp) => (Some(Fast::CacheHit(resp)), None),
                CacheOutcome::Miss(fill) => {
                    match Self::try_offload(&mut inner, service, &payload) {
                        Some((resp, work)) => {
                            // The kernel answers instead of the
                            // accelerator: no response will fill.
                            Self::release_fill(&mut inner, fill);
                            (Some(Fast::Offload(resp, work)), None)
                        }
                        None => (None, fill),
                    }
                }
            }
        };
        match fast {
            Some(Fast::CacheHit(resp)) => {
                // A hit replies straight from the SNIC: no mqueue slot,
                // no RDMA verb, no forward cycle. The tenant's in-flight
                // slot is released here — no completion will arrive.
                self.inner.borrow_mut().tenancy_complete_payload(&payload);
                self.send_reply(sim, service, ret, resp);
                return;
            }
            Some(Fast::Offload(resp, work)) => {
                // The kernel runs on the shared core pool (the unbatched
                // path charges there too), then replies directly.
                self.inner.borrow_mut().tenancy_complete_payload(&payload);
                let stack = self.inner.borrow().stack.clone();
                let this = self.clone();
                stack.charge(sim, work, move |sim| {
                    this.send_reply(sim, service, ret, resp);
                });
                return;
            }
            None => {}
        }
        let (policy, picked) = {
            let mut inner = self.inner.borrow_mut();
            let svc = &mut inner.services[service.0];
            let policy = svc.dispatcher.policy().name();
            let picked = svc
                .dispatcher
                .pick(&svc.mqs, key)
                .map(|i| (i, Rc::clone(&svc.owners[i]), svc.mqs[i].clone()));
            Self::count_dispatch(&inner, service.0, policy, picked.is_some());
            (policy, picked)
        };
        match picked {
            Some((qi, rmq, mq)) => {
                sim.trace(|| TraceEvent::Dispatch {
                    policy,
                    queue: Some(mq.label()),
                });
                // The dispatcher checked for room, so backpressure here is
                // impossible; a transport give-up (faults) is counted by
                // the retry machinery and surfaces as a lost UDP request.
                if rmq.push_request(sim, &mq, ret, &payload, |_, _| {}).is_ok() {
                    self.note_dispatched(sim.now(), service, qi, 1);
                    self.note_path(sim.now(), service, qi, fill);
                    let func = self.inner.borrow().tenancy_func(&payload);
                    self.note_tenancy(service, qi, func);
                } else {
                    let mut inner = self.inner.borrow_mut();
                    Self::release_fill(&mut inner, fill);
                    // Rejected by the transport: no completion will
                    // release the tenant slot.
                    inner.tenancy_complete_payload(&payload);
                }
            }
            None => {
                sim.trace(|| TraceEvent::Dispatch {
                    policy,
                    queue: None,
                });
                // Dropped (all queues full): no response will ever fill
                // the leased slot or complete the tenant's dispatch.
                let mut inner = self.inner.borrow_mut();
                Self::release_fill(&mut inner, fill);
                inner.tenancy_complete_payload(&payload);
            }
        }
    }

    /// Average delay before the forwarder's round-robin poll cycle reaches
    /// a freshly-rung TX doorbell (half a full scan over every tenant's
    /// queues).
    fn detection_delay(inner: &Inner) -> Duration {
        inner.costs.poll_rtt_per_mqueue * Self::total_mqueues(inner) / 2
    }

    #[allow(clippy::too_many_arguments)]
    fn on_response_ready(
        &self,
        sim: &mut Sim,
        service: ServiceId,
        qi: usize,
        mq: Mqueue,
        rmq: Rc<RemoteMqManager>,
        gate: Rc<Cell<bool>>,
        core: usize,
    ) {
        let (batched, stack, cost, detect) = {
            let inner = self.inner.borrow();
            if inner.pipeline.config().is_batched() && gate.get() {
                // A forward cycle for this mqueue is already pending; it
                // will collect this response too. (Checked before the
                // poll counter: a coalesced doorbell is not a poll.)
                return;
            }
            inner
                .sites
                .forward_polls
                .add(&inner.stats, "server.forward_polls", 1);
            (
                inner.pipeline.config().is_batched(),
                inner.stack.clone(),
                Self::forward_cost(&inner),
                Self::detection_delay(&inner),
            )
        };
        if !batched {
            // Legacy per-response forwarding — the exact pre-pipeline
            // event sequence.
            let this = self.clone();
            sim.schedule_in(detect, move |sim| {
                stack.charge(sim, cost, move |sim| {
                    let this2 = this.clone();
                    rmq.pull_response(sim, &mq, move |sim, ret, payload| {
                        let collected = [(ret, payload)];
                        this2.on_collected(sim.now(), service, qi, &collected);
                        let [(ret, payload)] = collected;
                        this2.send_reply(sim, service, ret, payload);
                    });
                });
            });
            return;
        }
        gate.set(true);
        let this = self.clone();
        sim.schedule_in(detect, move |sim| {
            this.forward_batch(sim, service, qi, mq, rmq, gate, core);
        });
    }

    /// One batched forward cycle for `mq`, pinned to its owner core:
    /// charge the amortized forward cost for everything pending (up to the
    /// batch limit), collect it as one chained RDMA read, reply in one
    /// batched stack invocation, then re-arm if responses kept arriving.
    #[allow(clippy::too_many_arguments)]
    fn forward_batch(
        &self,
        sim: &mut Sim,
        service: ServiceId,
        qi: usize,
        mq: Mqueue,
        rmq: Rc<RemoteMqManager>,
        gate: Rc<Cell<bool>>,
        core: usize,
    ) {
        let pending = mq.pending_responses() as usize;
        if pending == 0 {
            gate.set(false);
            return;
        }
        let (stack, cost, k) = {
            let inner = self.inner.borrow();
            let k = inner.pipeline.config().batch_limit(pending).min(pending);
            inner
                .sites
                .forward_batches
                .add(&inner.stats, "pipeline.forward_batches", 1);
            inner.sites.forward_batched_msgs.add(
                &inner.stats,
                "pipeline.forward_batched_msgs",
                k as u64,
            );
            let cost = Self::forward_cost(&inner) + inner.costs.forward_marginal * (k as u32 - 1);
            (inner.stack.clone(), cost, k)
        };
        let this = self.clone();
        stack.charge_on(sim, core, cost, move |sim| {
            let this2 = this.clone();
            let mq2 = mq.clone();
            let rmq2 = Rc::clone(&rmq);
            rmq.pull_responses(sim, &mq, k, move |sim, responses| {
                this2.on_collected(sim.now(), service, qi, &responses);
                this2.send_replies(sim, service, responses);
                gate.set(false);
                if mq2.pending_responses() > 0 {
                    // More responses landed while this cycle ran: start
                    // the next one (fresh detection delay).
                    this2.on_response_ready(sim, service, qi, mq2.clone(), rmq2, gate, core);
                }
            });
        });
    }

    fn send_reply(&self, sim: &mut Sim, service: ServiceId, ret: ReturnAddr, payload: Payload) {
        if let Err(e) = self.try_send_reply(sim, service, ret, payload) {
            // Shed, counted; a UDP client sees a lost reply.
            debug_assert!(matches!(e, Error::Unroutable { .. }));
        }
    }

    /// Routes one response back to its client, reporting — instead of
    /// panicking on — responses that cannot be routed (a slot with no
    /// return address, or a UDP reply from a service that never bound a
    /// UDP port). Unroutable replies count as `server.unroutable`.
    fn try_send_reply(
        &self,
        sim: &mut Sim,
        service: ServiceId,
        ret: ReturnAddr,
        payload: Payload,
    ) -> crate::Result<()> {
        let (stack, port) = {
            let inner = self.inner.borrow();
            (inner.stack.clone(), inner.services[service.0].udp_port)
        };
        let route = match ret {
            ReturnAddr::Udp(addr) => match port {
                Some(p) => Ok((p, addr)),
                None => Err(()),
            },
            ReturnAddr::Tcp(conn) => {
                self.count_reply(service);
                stack.send_tcp(sim, conn, payload);
                return Ok(());
            }
            ReturnAddr::Fixed => Err(()),
        };
        match route {
            Ok((p, addr)) => {
                self.count_reply(service);
                stack.send_udp(sim, p, addr, payload);
                Ok(())
            }
            Err(()) => {
                self.count_unroutable();
                Err(Error::Unroutable { service: service.0 })
            }
        }
    }

    /// Sends a collected batch of replies in as few stack invocations as
    /// possible: all UDP replies go out as one
    /// [`HostStack::send_udp_batch`] (in collection order), TCP replies —
    /// which need per-connection framing — individually. Unroutable
    /// responses are shed and counted without disturbing the rest of the
    /// batch.
    fn send_replies(
        &self,
        sim: &mut Sim,
        service: ServiceId,
        responses: Vec<(ReturnAddr, Payload)>,
    ) {
        let (stack, port) = {
            let inner = self.inner.borrow();
            (inner.stack.clone(), inner.services[service.0].udp_port)
        };
        let mut udp: Vec<(SockAddr, Payload)> = Vec::new();
        for (ret, payload) in responses {
            match ret {
                ReturnAddr::Udp(addr) => match port {
                    Some(_) => {
                        self.count_reply(service);
                        udp.push((addr, payload));
                    }
                    None => self.count_unroutable(),
                },
                ReturnAddr::Tcp(conn) => {
                    self.count_reply(service);
                    stack.send_tcp(sim, conn, payload);
                }
                ReturnAddr::Fixed => {
                    self.count_unroutable();
                }
            }
        }
        if !udp.is_empty() {
            stack.send_udp_batch(sim, port.expect("checked above"), udp);
        }
    }

    fn count_reply(&self, service: ServiceId) {
        let inner = self.inner.borrow();
        inner.sites.replies.add(&inner.stats, "server.replies", 1);
        let i = service.0;
        inner.services[i].sites.replies.add_with(
            &inner.stats,
            || format!("server.svc{i}.replies"),
            1,
        );
    }

    fn count_unroutable(&self) {
        let inner = self.inner.borrow();
        inner
            .sites
            .unroutable
            .add(&inner.stats, "server.unroutable", 1);
    }

    fn on_backend_call(
        &self,
        sim: &mut Sim,
        mq: Mqueue,
        rmq: Rc<RemoteMqManager>,
        bridge: Rc<RefCell<BackendBridge>>,
    ) {
        let (stack, cost) = {
            let inner = self.inner.borrow();
            (inner.stack.clone(), Self::forward_cost(&inner))
        };
        let this = self.clone();
        let stack2 = stack.clone();
        stack.charge(sim, cost, move |sim| {
            rmq.pull_response(sim, &mq, move |sim, _ret, payload| {
                {
                    let inner = this.inner.borrow();
                    inner
                        .sites
                        .backend_calls
                        .add(&inner.stats, "server.backend_calls", 1);
                }
                let conn = bridge.borrow().conn;
                match conn {
                    Some(conn) => stack2.send_tcp(sim, conn, payload),
                    None => bridge.borrow_mut().queued.push(payload),
                }
            });
        });
    }

    fn on_backend_response(
        &self,
        sim: &mut Sim,
        mq: Mqueue,
        rmq: Rc<RemoteMqManager>,
        payload: Payload,
    ) {
        let (stack, cost) = {
            let inner = self.inner.borrow();
            (inner.stack.clone(), Self::dispatch_cost(&inner))
        };
        stack.charge(sim, cost, move |sim| {
            // A full client ring sheds the backend response; the mqueue's
            // sink counts the drop.
            let _ = rmq.push_request(sim, &mq, ReturnAddr::Fixed, &payload, |_, _| {});
        });
    }

    // --- SNIC health monitor ---------------------------------------------

    /// Arms the periodic health scan (idempotent; no-op when recovery is
    /// disabled). Called on every incoming request so the monitor only
    /// runs while the server is live.
    fn arm_monitor(&self, sim: &mut Sim) {
        let interval = {
            let mut inner = self.inner.borrow_mut();
            if !inner.recovery.enabled || inner.monitor_armed {
                return;
            }
            inner.monitor_armed = true;
            inner.recovery.scan_interval
        };
        let this = self.clone();
        sim.schedule_in(interval, move |sim| this.health_scan(sim));
    }

    fn health_scan(&self, sim: &mut Sim) {
        enum Act {
            Quarantine(String),
            Readmit(String),
        }
        let now = sim.now();
        let mut acts = Vec::new();
        let rearm = {
            let mut inner = self.inner.borrow_mut();
            let threshold = inner.recovery.stall_threshold;
            let stats = inner.stats.clone();
            let mut live_work = false;
            let mut resets: Vec<(usize, usize)> = Vec::new();
            for (i, svc) in inner.services.iter_mut().enumerate() {
                for qi in 0..svc.mqs.len() {
                    let mq = &svc.mqs[qi];
                    let responses = mq.responses();
                    let in_flight = mq.in_flight();
                    let h = &mut svc.health[qi];
                    let progressed = responses > h.last_responses;
                    if progressed || in_flight == 0 {
                        h.last_responses = responses;
                        h.last_progress = now;
                    }
                    if in_flight == 0 && h.path_lost {
                        // Fully drained: FIFO pairing is back in sync.
                        h.path_lost = false;
                    }
                    if svc.dispatcher.is_quarantined(qi) {
                        // Re-admit on any sign of life: new responses, or a
                        // fully drained backlog.
                        if progressed || in_flight == 0 {
                            svc.dispatcher.readmit(qi);
                            stats.count("dispatch.readmitted", 1);
                            acts.push(Act::Readmit(mq.label()));
                            if in_flight > 0 {
                                live_work = true;
                            }
                        }
                        // A wedged quarantined queue (crashed accelerator)
                        // does NOT keep the monitor armed: its backlog will
                        // never drain, and the simulation must terminate.
                    } else if in_flight > 0 && now >= h.last_progress + threshold {
                        svc.dispatcher.quarantine(qi);
                        stats.count("dispatch.quarantined", 1);
                        acts.push(Act::Quarantine(mq.label()));
                        // A quarantined queue may have dropped requests on
                        // the floor (crash) — its recorded entries can no
                        // longer be trusted to line up with whatever it
                        // sends after readmission.
                        resets.push((i, qi));
                    } else if in_flight > 0 {
                        live_work = true;
                    }
                }
            }
            for (i, qi) in resets {
                Self::reset_queue_path(&mut inner, i, qi);
            }
            if !live_work {
                inner.monitor_armed = false;
            }
            live_work
        };
        for act in acts {
            match act {
                Act::Quarantine(queue) => sim.trace(|| TraceEvent::Quarantine { queue }),
                Act::Readmit(queue) => sim.trace(|| TraceEvent::Readmit { queue }),
            }
        }
        if rearm {
            let interval = self.inner.borrow().recovery.scan_interval;
            let this = self.clone();
            sim.schedule_in(interval, move |sim| this.health_scan(sim));
        }
    }

    // --- Elastic control plane -------------------------------------------

    /// Admission control at the very front of the request path: refills
    /// the service's token bucket from the simulated clock and takes one
    /// token, or rejects with [`Error::Overloaded`] — before any dispatch
    /// cost is charged or RDMA verb issued.
    fn try_admit(&self, sim: &Sim, service: ServiceId) -> crate::Result<()> {
        let mut inner = self.inner.borrow_mut();
        let cfg = inner.control;
        if !cfg.enabled || cfg.admission_rate <= 0.0 {
            return Ok(());
        }
        let now = sim.now();
        let i = service.0;
        if inner.services[i]
            .control
            .bucket
            .admit(now, cfg.admission_rate, cfg.admission_burst)
        {
            return Ok(());
        }
        inner.sites.shed.add(&inner.stats, "dispatch.shed", 1);
        inner.services[i]
            .sites
            .shed
            .add_with(&inner.stats, || format!("server.svc{i}.shed"), 1);
        Err(Error::Overloaded { service: i })
    }

    /// Runs the λ-NIC match-action stage for one request: match the
    /// payload to a registered function, charge its quota and decide its
    /// residency. Admitted requests hold one tenant in-flight slot until
    /// a matching completion (see [`Self::note_tenancy`]).
    fn tenancy_gate(&self, sim: &Sim, service: ServiceId, payload: &Payload) -> TenancyGate {
        let mut inner = self.inner.borrow_mut();
        if !inner.tenancy_on() {
            return TenancyGate::Pass;
        }
        let now = sim.now();
        let decision = inner
            .tenancy
            .as_mut()
            .expect("tenancy_on() implies Some")
            .decide(now, service.0, payload);
        let gate = match decision {
            Ok(a) if a.delay.is_zero() => TenancyGate::Pass,
            Ok(a) => TenancyGate::Warm(a.delay),
            Err(e) => {
                debug_assert!(matches!(
                    e,
                    Error::Overloaded { .. } | Error::Unroutable { .. }
                ));
                TenancyGate::Shed
            }
        };
        inner.sync_tenancy();
        gate
    }

    /// Records the tenant function behind one request accepted into queue
    /// `qi`, so the in-order mqueue completion can release its in-flight
    /// slot. Mirrors [`Self::note_path`]'s suspension rule: while
    /// matching is suspended after a desync reset, the slot is released
    /// immediately instead of recorded (the response cannot be paired).
    fn note_tenancy(&self, service: ServiceId, qi: usize, func: Option<FnId>) {
        let Some(func) = func else {
            return;
        };
        let mut inner = self.inner.borrow_mut();
        if !inner.tenancy_on() {
            return;
        }
        let recorded = {
            let svc = &mut inner.services[service.0];
            if svc.health[qi].path_lost {
                false
            } else if let Some(q) = svc.tfifo.get_mut(qi) {
                q.push_back(func.0);
                true
            } else {
                false
            }
        };
        if !recorded {
            if let Some(t) = inner.tenancy.as_mut() {
                t.complete(func);
            }
            inner.sync_tenancy();
        }
    }

    /// Records the dispatch timestamps of `k` requests accepted into
    /// queue `qi` (control plane only — the deques stay empty otherwise).
    fn note_dispatched(&self, now: Time, service: ServiceId, qi: usize, k: usize) {
        if k == 0 {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        if !inner.control.enabled {
            return;
        }
        let svc = &mut inner.services[service.0];
        if svc.health[qi].path_lost {
            // Matching is suspended until the queue drains.
            return;
        }
        if let Some(q) = svc.control.pending.get_mut(qi) {
            for _ in 0..k {
                q.push_back(now);
            }
        }
    }

    /// Records the path entry of one request accepted into queue `qi`:
    /// the dispatch timestamp and, for a cacheable GET miss, the cache
    /// slot its response should fill. No-op unless the cache or
    /// path-latency tracking needs it.
    fn note_path(&self, now: Time, service: ServiceId, qi: usize, fill: Option<FillSlot>) {
        let mut inner = self.inner.borrow_mut();
        if !inner.track_path() {
            Self::release_fill(&mut inner, fill);
            return;
        }
        if inner.services[service.0].health[qi].path_lost {
            // Matching is suspended until the queue drains: recording an
            // entry now would pair it with one of the orphaned responses
            // still in flight.
            Self::release_fill(&mut inner, fill);
            return;
        }
        let svc = &mut inner.services[service.0];
        if qi < svc.path.len() {
            svc.path[qi].push_back(PathEntry { at: now, fill });
        } else {
            Self::release_fill(&mut inner, fill);
        }
    }

    /// Matches collected responses of queue `qi` against their dispatch
    /// records (FIFO per queue — mqueue responses complete in order):
    /// records the dispatch→collection latency into the control plane's
    /// sliding window and the miss-path histogram, and populates the
    /// cache from responses whose request was a cacheable GET miss —
    /// "responses arriving on the forward path populate the cache".
    fn on_collected(
        &self,
        now: Time,
        service: ServiceId,
        qi: usize,
        responses: &[(ReturnAddr, Payload)],
    ) {
        let mut guard = self.inner.borrow_mut();
        let inner = &mut *guard;
        let control_on = inner.control.enabled;
        let cache_on = inner.cache_cfg.enabled;
        let track_hist = inner.cache_cfg.track_path_latency;
        let track = cache_on || track_hist;
        let tenancy_on = inner.tenancy_on();
        if !control_on && !track && !tenancy_on {
            return;
        }
        // Integrity: every accepted request records one entry and every
        // collected response pops one, and the transport completes this
        // batch before handing it over — so the deques must hold exactly
        // in_flight + responses.len() entries right now. More means a
        // response was discarded post-acceptance (transport give-up):
        // popping would pair later responses with earlier requests and
        // fill the cache under the wrong key. Reset and re-sync once the
        // queue drains.
        let lost = {
            let svc = &inner.services[service.0];
            let expected = svc.mqs[qi].in_flight() + responses.len();
            svc.path.get(qi).is_some_and(|q| q.len() > expected)
                || svc
                    .control
                    .pending
                    .get(qi)
                    .is_some_and(|q| q.len() > expected)
                || svc.tfifo.get(qi).is_some_and(|q| q.len() > expected)
        };
        if lost {
            Self::reset_queue_path(inner, service.0, qi);
        }
        let svc = &mut inner.services[service.0];
        let caches = &mut inner.caches;
        let protocol = inner.protocol.as_deref();
        let mut fills = 0u64;
        // Tenant functions completed by this batch (per-queue FIFO, like
        // the path entries) — released after the borrow on `svc` ends.
        let mut done_funcs: Vec<u32> = Vec::new();
        for (_, payload) in responses {
            if control_on {
                if let Some(t0) = svc.control.pending.get_mut(qi).and_then(|q| q.pop_front()) {
                    svc.control.latency.record(now - t0);
                }
            }
            if tenancy_on {
                if let Some(f) = svc.tfifo.get_mut(qi).and_then(|q| q.pop_front()) {
                    done_funcs.push(f);
                }
            }
            if track {
                if let Some(entry) = svc.path.get_mut(qi).and_then(|q| q.pop_front()) {
                    if track_hist {
                        svc.miss_path.record(now - entry.at);
                    }
                    if cache_on {
                        if let Some(f) = entry.fill {
                            if protocol.is_some_and(|p| p.cacheable_response(payload)) {
                                // Admitted only while the lease issued at
                                // miss time is still current: a racing SET
                                // (or a newer miss for the key) voided it.
                                if caches[f.lane].fill_leased(&f.key, payload, f.token) {
                                    fills += 1;
                                }
                            } else {
                                caches[f.lane].abandon_fill(&f.key, f.token);
                            }
                        }
                    }
                }
            }
        }
        // A drained queue is trivially back in sync: lift the matching
        // suspension imposed by an earlier reset.
        if svc.health[qi].path_lost && svc.mqs[qi].in_flight() == 0 {
            svc.health[qi].path_lost = false;
        }
        if !done_funcs.is_empty() {
            if let Some(t) = inner.tenancy.as_mut() {
                for f in done_funcs {
                    t.complete(FnId(f));
                }
            }
            inner.sync_tenancy();
        }
        if fills > 0 {
            inner
                .sites
                .cache_fills
                .add(&inner.stats, "cache.fills", fills);
        }
        if cache_on {
            let bytes: usize = inner.caches.iter().map(SnicCache::bytes).sum();
            inner.sites.cache_bytes.set_with(
                &inner.stats,
                || "cache.bytes".to_string(),
                bytes as f64,
            );
        }
    }

    /// Arms the periodic control scan (idempotent; no-op when the control
    /// plane is disabled). On the very first arm it parks each service's
    /// fleet down to [`ControlConfig::min_workers`] — construction itself
    /// stays side-effect free.
    fn arm_control(&self, sim: &mut Sim) {
        let interval = {
            let mut inner = self.inner.borrow_mut();
            if !inner.control.enabled || inner.control_armed {
                return;
            }
            inner.control_armed = true;
            if !inner.control_initialized {
                inner.control_initialized = true;
                let min = inner.control.min_workers;
                for svc in inner.services.iter_mut() {
                    for qi in min..svc.mqs.len() {
                        svc.dispatcher.park(qi);
                    }
                }
            }
            inner.control.scan_interval
        };
        let this = self.clone();
        sim.schedule_in(interval, move |sim| this.control_scan(sim));
    }

    /// One control-scan tick: finish pending drains, close each service's
    /// observation window, and act on the hysteresis-filtered decision.
    /// Runs on the dedicated control lane — its cost is modeled as the
    /// `control.lane_util` gauge, not charged to the request-path cores.
    fn control_scan(&self, sim: &mut Sim) {
        let mut drains: Vec<Mqueue> = Vec::new();
        let mut provisions: Vec<(ServiceId, usize, String)> = Vec::new();
        let mut parked: Vec<String> = Vec::new();
        let mut degrade_flips: Vec<(usize, bool)> = Vec::new();
        let (rearm, interval) = {
            let mut inner = self.inner.borrow_mut();
            let cfg = inner.control;
            let cache_on = inner.cache_cfg.enabled && inner.protocol.is_some();
            let stats = inner.stats.clone();
            stats.count("control.scans", 1);
            let mut live = false;
            for si in 0..inner.services.len() {
                let svc = &mut inner.services[si];
                // 1. A queue parked by scale-in whose backlog has flushed
                //    is drained: its staged slot buffers return to the
                //    scratch pool instead of lingering until drop.
                let flushed: Vec<usize> = svc
                    .control
                    .draining
                    .iter()
                    .copied()
                    .filter(|&qi| svc.mqs[qi].in_flight() == 0)
                    .collect();
                for qi in flushed {
                    svc.control.draining.remove(&qi);
                    drains.push(svc.mqs[qi].clone());
                }
                // 2. Close the observation window.
                let window = svc.control.latency.roll();
                let p99 = (!window.is_empty()).then(|| window.percentile(99.0));
                // 3. Mean occupancy over the active queues.
                let active: Vec<usize> = (0..svc.mqs.len())
                    .filter(|&qi| !svc.dispatcher.is_parked(qi))
                    .collect();
                let occupancy = if active.is_empty() {
                    0.0
                } else {
                    active
                        .iter()
                        .map(|&qi| {
                            svc.mqs[qi].in_flight() as f64 / svc.mqs[qi].config().slots as f64
                        })
                        .sum::<f64>()
                        / active.len() as f64
                };
                if svc.mqs.iter().any(|m| m.in_flight() > 0) {
                    live = true;
                }
                // 4. The serve-stale switch reads the same occupancy
                //    signal, one band above scale-out pressure: it is the
                //    step *before* token-bucket shedding, engaged and
                //    released with its own hysteresis.
                if cache_on {
                    if let Some(on) = svc.control.degrade.decide(&cfg, occupancy) {
                        stats.count(
                            if on {
                                "control.degrade_on"
                            } else {
                                "control.degrade_off"
                            },
                            1,
                        );
                        degrade_flips.push((si, on));
                    }
                    stats.gauge(
                        &format!("control.svc{si}.degraded"),
                        if svc.control.degrade.active { 1.0 } else { 0.0 },
                    );
                }
                // 5. Act once enough consecutive windows agree.
                match svc.control.hysteresis.decide(&cfg, occupancy, p99) {
                    ScaleDecision::Out => {
                        let max = if cfg.max_workers == 0 {
                            svc.mqs.len()
                        } else {
                            cfg.max_workers.min(svc.mqs.len())
                        };
                        // Workers already live plus workers mid-provision.
                        let committed = active.len() + svc.control.provisioning.len();
                        if committed < max {
                            // Lowest-index parked queue not already in
                            // motion — deterministic and index-stable.
                            let next = (0..svc.mqs.len()).find(|qi| {
                                svc.dispatcher.is_parked(*qi)
                                    && !svc.control.provisioning.contains(qi)
                                    && !svc.control.draining.contains(qi)
                            });
                            if let Some(qi) = next {
                                svc.control.provisioning.insert(qi);
                                provisions.push((ServiceId(si), qi, svc.mqs[qi].label()));
                            }
                        }
                    }
                    ScaleDecision::In => {
                        if active.len() > cfg.min_workers && svc.control.provisioning.is_empty() {
                            // Highest-index active queue parks, then
                            // drains once its backlog flushes.
                            if let Some(&qi) = active.last() {
                                svc.dispatcher.park(qi);
                                svc.control.draining.insert(qi);
                                stats.count("control.scale_in", 1);
                                parked.push(svc.mqs[qi].label());
                            }
                        }
                    }
                    ScaleDecision::Hold => {}
                }
                let workers = svc.mqs.len() - svc.dispatcher.parked_count();
                stats.gauge(&format!("control.svc{si}.workers"), workers as f64);
            }
            // The control task's own load on its dedicated SNIC lane: one
            // occupancy probe per registered mqueue per scan.
            let scan_cost = inner.costs.scan_per_mqueue * Self::total_mqueues(&inner);
            stats.gauge(
                "control.lane_util",
                scan_cost.as_secs_f64() / cfg.scan_interval.as_secs_f64(),
            );
            let transitions = !provisions.is_empty()
                || inner
                    .services
                    .iter()
                    .any(|s| !s.control.draining.is_empty() || !s.control.provisioning.is_empty());
            let rearm = live || transitions;
            if !rearm {
                // Disarmed on idle so the simulation can terminate; the
                // next request re-arms the scan.
                inner.control_armed = false;
            }
            (rearm, cfg.scan_interval)
        };
        for mq in drains {
            mq.drain(sim);
        }
        for label in parked {
            sim.trace(|| TraceEvent::Custom {
                track: "control".into(),
                name: "ScaleIn".into(),
                detail: format!("park {label}"),
            });
        }
        for (si, on) in degrade_flips {
            sim.trace(|| TraceEvent::Custom {
                track: "control".into(),
                name: if on { "DegradeOn" } else { "DegradeOff" }.into(),
                detail: format!(
                    "svc{si} cache-only serve-stale {}",
                    if on { "engaged" } else { "released" }
                ),
            });
        }
        for (service, qi, label) in provisions {
            sim.trace(|| TraceEvent::Custom {
                track: "control".into(),
                name: "ScaleOut".into(),
                detail: format!("provision {label}"),
            });
            let this = self.clone();
            let provision = { self.inner.borrow().costs.provision };
            sim.schedule_in(provision, move |sim| {
                this.finish_provision(sim, service, qi);
            });
        }
        if rearm {
            let this = self.clone();
            sim.schedule_in(interval, move |sim| this.control_scan(sim));
        }
    }

    /// Completes one scale-out: the provisioning delay elapsed, the
    /// worker's persistent kernel is live, and its queue rejoins the
    /// dispatch set.
    fn finish_provision(&self, sim: &mut Sim, service: ServiceId, qi: usize) {
        let (label, stats) = {
            let mut inner = self.inner.borrow_mut();
            let stats = inner.stats.clone();
            let svc = &mut inner.services[service.0];
            svc.control.provisioning.remove(&qi);
            svc.dispatcher.unpark(qi);
            (svc.mqs[qi].label(), stats)
        };
        stats.count("control.scale_out", 1);
        sim.trace(|| TraceEvent::Custom {
            track: "control".into(),
            name: "WorkerUp".into(),
            detail: format!("unpark {label}"),
        });
    }
}

/// Steering key for a UDP client: the client's *host* identity, not its
/// ephemeral source port — a client machine keeps hitting the same mqueue
/// across requests (stateful services, §4.2).
fn hash_client(addr: &SockAddr) -> u64 {
    let mut h = DefaultHasher::new();
    addr.host.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_properties() {
        assert_eq!(SnicPlatform::Bluefield.cores(), 7);
        assert_eq!(SnicPlatform::HostCores(6).cores(), 6);
        assert_eq!(SnicPlatform::Bluefield.cpu_kind(), CpuKind::ArmA72);
        assert_eq!(SnicPlatform::Bluefield.to_string(), "Bluefield");
        assert_eq!(SnicPlatform::HostCores(1).to_string(), "1 Xeon core");
    }

    #[test]
    fn arm_cost_model_is_heavier() {
        let arm = CostModel::for_cpu(CpuKind::ArmA72);
        let xeon = CostModel::for_cpu(CpuKind::XeonE5);
        assert!(arm.dispatch > xeon.dispatch);
        assert!(arm.forward > xeon.forward);
        assert!(arm.scan_per_mqueue > xeon.scan_per_mqueue);
    }

    #[test]
    fn recovery_defaults_are_sane() {
        let cfg = RecoveryConfig::default();
        assert!(cfg.enabled);
        assert!(cfg.stall_threshold > cfg.scan_interval);
        assert!(!RecoveryConfig::disabled().enabled);
    }
}
