//! The accelerator-side runtime: persistent workers and the I/O shim.
//!
//! Lynx deliberately avoids "running a resource-heavy network server and
//! work dispatch code on the accelerator" (§4.1): the accelerator runs a
//! *lightweight shim* — a poll loop over local memory, a `recv`, a `send`
//! (the paper's GPU I/O library is ~20 lines of code and one thread per
//! threadblock). [`Worker`] reproduces that loop; [`AccelApp`] is the
//! application hook, with [`WorkerCtx`] providing the three operations the
//! shim offers mid-request: compute, reply, and a blocking call to a
//! backend service through a client mqueue.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use lynx_device::{GpuProfile, RequestProcessor, Threadblock};
use lynx_sim::{Payload, Sim, TraceEvent};

use crate::Mqueue;

/// An accelerator execution unit able to host a persistent worker: one GPU
/// threadblock, one VCA enclave thread, one FPGA processing context.
pub trait ExecUnit: fmt::Debug {
    /// Runs `work` of reference-time compute; `done` fires at completion.
    /// Work submitted while busy queues FIFO.
    fn run(&self, sim: &mut Sim, work: Duration, done: Box<dyn FnOnce(&mut Sim)>);

    /// Latency for the unit's poll loop to notice a doorbell update in
    /// local memory.
    fn poll_detect(&self) -> Duration;

    /// Cost of reading a request from / writing a response to the local
    /// mqueue (the whole point of mqueues: this is a local memory access,
    /// not a PCIe transaction).
    fn local_io(&self) -> Duration;
}

/// [`ExecUnit`] implementation for a GPU persistent-kernel threadblock.
#[derive(Clone, Debug)]
pub struct ThreadblockUnit {
    tb: Threadblock,
}

impl ThreadblockUnit {
    /// Wraps a spawned threadblock.
    pub fn new(tb: Threadblock) -> ThreadblockUnit {
        ThreadblockUnit { tb }
    }

    /// Requests processed by the underlying threadblock.
    pub fn requests(&self) -> u64 {
        self.tb.requests()
    }
}

impl ExecUnit for ThreadblockUnit {
    fn run(&self, sim: &mut Sim, work: Duration, done: Box<dyn FnOnce(&mut Sim)>) {
        self.tb.run(sim, work, done);
    }

    fn poll_detect(&self) -> Duration {
        GpuProfile::reference().poll_detect
    }

    fn local_io(&self) -> Duration {
        GpuProfile::reference().local_io
    }
}

/// Application logic running on an accelerator behind the Lynx shim.
pub trait AccelApp {
    /// Handles one request. The implementation must eventually call
    /// [`WorkerCtx::reply`] (possibly after [`WorkerCtx::compute`] steps
    /// and [`WorkerCtx::call_backend`] round trips).
    fn on_request(&self, sim: &mut Sim, request: Payload, ctx: WorkerCtx);

    /// Name for diagnostics.
    fn name(&self) -> &str {
        "accel-app"
    }
}

/// Adapts a simple [`RequestProcessor`] (echo, LeNet, …) into an
/// [`AccelApp`]: compute for the processor's service time (plus dynamic-
/// parallelism spawn overhead per child kernel launch), then reply with the
/// processed payload.
pub struct ProcessorApp {
    proc: Rc<dyn RequestProcessor>,
}

impl fmt::Debug for ProcessorApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessorApp")
            .field("processor", &self.proc.name())
            .finish()
    }
}

impl ProcessorApp {
    /// Wraps a request processor.
    pub fn new(proc: Rc<dyn RequestProcessor>) -> ProcessorApp {
        ProcessorApp { proc }
    }
}

impl AccelApp for ProcessorApp {
    fn on_request(&self, sim: &mut Sim, request: Payload, ctx: WorkerCtx) {
        let work = self.proc.service_time(&request)
            + GpuProfile::reference().dynamic_parallelism_gap * self.proc.launches();
        let response = self.proc.process(&request);
        ctx.compute(sim, work, move |sim, ctx| {
            ctx.reply(sim, &response);
        });
    }

    fn name(&self) -> &str {
        self.proc.name()
    }
}

type BackendCont = Box<dyn FnOnce(&mut Sim, Payload)>;

struct ClientPort {
    mq: Mqueue,
    pending: RefCell<Option<BackendCont>>,
}

struct Inner {
    unit: Rc<dyn ExecUnit>,
    mq: Mqueue,
    app: Rc<dyn AccelApp>,
    clients: RefCell<Vec<Rc<ClientPort>>>,
    busy: Cell<bool>,
    done_count: Cell<u64>,
    dead: Cell<bool>,
}

/// A persistent worker: one execution unit bound to one server mqueue.
///
/// The worker's lifecycle mirrors a persistent GPU kernel: poll the RX
/// doorbell, `recv` the request from local memory, run the application,
/// `send` the response, loop. One request is in flight per worker at a
/// time; responses are produced in request order.
pub struct Worker {
    inner: Rc<Inner>,
}

impl Clone for Worker {
    fn clone(&self) -> Self {
        Worker {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl fmt::Debug for Worker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker")
            .field("app", &self.inner.app.name())
            .field("busy", &self.inner.busy.get())
            .field("done", &self.inner.done_count.get())
            .finish()
    }
}

impl Worker {
    /// Creates a worker serving `mq` on `unit` with application `app`.
    pub fn new(unit: Rc<dyn ExecUnit>, mq: Mqueue, app: Rc<dyn AccelApp>) -> Worker {
        Worker {
            inner: Rc::new(Inner {
                unit,
                mq,
                app,
                clients: RefCell::new(Vec::new()),
                busy: Cell::new(false),
                done_count: Cell::new(0),
                dead: Cell::new(false),
            }),
        }
    }

    /// Attaches a client mqueue for backend calls; returns its index for
    /// [`WorkerCtx::call_backend`].
    pub fn add_client_mqueue(&self, mq: Mqueue) -> usize {
        let port = Rc::new(ClientPort {
            mq: mq.clone(),
            pending: RefCell::new(None),
        });
        let mut clients = self.inner.clients.borrow_mut();
        let idx = clients.len();
        clients.push(Rc::clone(&port));
        drop(clients);
        // Backend responses land in the client mqueue's RX ring.
        let inner = Rc::clone(&self.inner);
        mq.set_rx_watcher(move |sim| {
            let detect = inner.unit.poll_detect() + inner.unit.local_io();
            let port = Rc::clone(&port);
            sim.schedule_in(detect, move |sim| {
                if let Some((_seq, payload)) = port.mq.acc_pop_request() {
                    let cont = port.pending.borrow_mut().take();
                    match cont {
                        Some(f) => f(sim, payload),
                        None => panic!("backend response without pending call"),
                    }
                }
            });
        });
        idx
    }

    /// Starts the worker: registers the persistent poll loop on the server
    /// mqueue's RX doorbell.
    pub fn start(&self) {
        let inner = Rc::clone(&self.inner);
        self.inner.mq.set_rx_watcher(move |sim| {
            Worker::poll(&inner, sim);
        });
    }

    /// Requests fully processed (responses sent).
    pub fn completed(&self) -> u64 {
        self.inner.done_count.get()
    }

    /// Whether an injected crash has killed this worker (fault site
    /// `accel.<mqueue label>`). A dead worker never polls again; the SNIC
    /// health monitor notices the stalled mqueue and quarantines it.
    pub fn crashed(&self) -> bool {
        self.inner.dead.get()
    }

    fn poll(inner: &Rc<Inner>, sim: &mut Sim) {
        if inner.dead.get() {
            return; // crashed: requests pile up unserved
        }
        if inner.busy.get() {
            return; // picked up after the current request completes
        }
        let mut detect = inner.unit.poll_detect() + inner.unit.local_io();
        if sim.faults_enabled() {
            let site = format!("accel.{}", inner.mq.label());
            match sim.fault_at(&site) {
                Some(lynx_sim::FaultAction::Crash) => {
                    inner.dead.set(true);
                    sim.count("accel.crashed", 1);
                    return;
                }
                Some(lynx_sim::FaultAction::Hang(stall)) => detect += stall,
                _ => {}
            }
        }
        inner.busy.set(true);
        let inner = Rc::clone(inner);
        sim.schedule_in(detect, move |sim| match inner.mq.acc_pop_request() {
            Some((seq, request)) => {
                sim.count("accel.started", 1);
                let mq_evt = inner.mq.clone();
                sim.trace(|| TraceEvent::AccelStart {
                    queue: mq_evt.label(),
                    seq,
                });
                let ctx = WorkerCtx {
                    inner: Rc::clone(&inner),
                    seq,
                };
                let app = Rc::clone(&inner.app);
                app.on_request(sim, request, ctx);
            }
            None => inner.busy.set(false),
        });
    }
}

/// Per-request context handed to [`AccelApp::on_request`]; the I/O shim.
///
/// The context is linear: `compute` and `call_backend` pass it to their
/// continuation, `reply` consumes it and finishes the request.
pub struct WorkerCtx {
    inner: Rc<Inner>,
    seq: u64,
}

impl fmt::Debug for WorkerCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerCtx").field("seq", &self.seq).finish()
    }
}

impl WorkerCtx {
    /// Sequence number of the request being served.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Runs `work` of kernel time on the execution unit, then continues.
    pub fn compute(
        self,
        sim: &mut Sim,
        work: Duration,
        then: impl FnOnce(&mut Sim, WorkerCtx) + 'static,
    ) {
        let inner = Rc::clone(&self.inner);
        inner.unit.run(
            sim,
            work,
            Box::new(move |sim| {
                then(sim, self);
            }),
        );
    }

    /// Sends a request on client mqueue `backend` and resumes with the
    /// backend's response — the blocking accelerator-side I/O of the Face
    /// Verification server (§6.4).
    ///
    /// # Panics
    ///
    /// Panics if `backend` is out of range or a call is already pending on
    /// that client mqueue.
    pub fn call_backend(
        self,
        sim: &mut Sim,
        backend: usize,
        payload: &[u8],
        then: impl FnOnce(&mut Sim, WorkerCtx, Payload) + 'static,
    ) {
        let port = {
            let clients = self.inner.clients.borrow();
            Rc::clone(
                clients
                    .get(backend)
                    .unwrap_or_else(|| panic!("no client mqueue {backend}")),
            )
        };
        {
            let mut pending = port.pending.borrow_mut();
            assert!(pending.is_none(), "backend call already pending");
            *pending = Some(Box::new(move |sim: &mut Sim, resp: Payload| {
                then(sim, self, resp);
            }));
        }
        // Local-memory write + TX doorbell: this is the entire cost of
        // sending from the accelerator (the SNIC does the heavy lifting).
        port.mq.acc_send(sim, payload);
    }

    /// Sends the response and completes the request; the worker resumes
    /// polling.
    pub fn reply(self, sim: &mut Sim, payload: &[u8]) {
        let inner = Rc::clone(&self.inner);
        inner.mq.acc_push_response(sim, self.seq, payload);
        sim.count("accel.completed", 1);
        inner.done_count.set(inner.done_count.get() + 1);
        inner.busy.set(false);
        // Serve anything that queued up while we were busy.
        Worker::poll(&inner, sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MqueueConfig, MqueueKind, ReturnAddr};
    use lynx_device::EchoProcessor;
    use lynx_device::{Gpu, GpuSpec};
    use lynx_fabric::{MemRegion, NodeId, PcieFabric};

    fn gpu_unit() -> (Gpu, Rc<dyn ExecUnit>) {
        let fabric = PcieFabric::new();
        let node = fabric.add_node("gpu");
        let gpu = Gpu::new(&fabric, node, GpuSpec::k40m());
        let unit: Rc<dyn ExecUnit> = Rc::new(ThreadblockUnit::new(gpu.spawn_block()));
        (gpu, unit)
    }

    fn server_mq() -> Mqueue {
        let cfg = MqueueConfig {
            slots: 8,
            slot_size: 256,
            ..MqueueConfig::default()
        };
        let mem = MemRegion::new(NodeId::host(), cfg.required_bytes(), "mq");
        Mqueue::new(MqueueKind::Server, mem, 0, cfg)
    }

    /// Lands a request directly (bypassing RDMA) and rings the doorbell.
    fn inject(sim: &mut Sim, mq: &Mqueue, payload: &[u8]) {
        let seq = mq.try_reserve(ReturnAddr::Fixed).unwrap();
        let slot = mq.encode_slot(seq, payload);
        mq.mem().write(mq.rx_slot_offset(seq), &slot);
        mq.notify_rx(sim);
    }

    #[test]
    fn worker_processes_request_and_replies() {
        let mut sim = Sim::new(0);
        let (_gpu, unit) = gpu_unit();
        let mq = server_mq();
        let worker = Worker::new(
            unit,
            mq.clone(),
            Rc::new(ProcessorApp::new(Rc::new(EchoProcessor))),
        );
        worker.start();
        inject(&mut sim, &mq, b"hello");
        sim.run();
        assert_eq!(worker.completed(), 1);
        let (seq, _, len) = mq.peek_response().unwrap();
        let resp = mq.mem().read(mq.tx_slot_offset(seq) + 8, len);
        assert_eq!(resp, b"hello");
    }

    #[test]
    fn queued_requests_drain_in_order() {
        let mut sim = Sim::new(0);
        let (_gpu, unit) = gpu_unit();
        let mq = server_mq();
        let worker = Worker::new(
            unit,
            mq.clone(),
            Rc::new(ProcessorApp::new(Rc::new(EchoProcessor))),
        );
        worker.start();
        for i in 0..5u8 {
            inject(&mut sim, &mq, &[i]);
        }
        sim.run();
        assert_eq!(worker.completed(), 5);
        for i in 0..5u64 {
            let (seq, _, len) = mq.peek_response().unwrap();
            assert_eq!(seq, i);
            assert_eq!(
                mq.mem().read(mq.tx_slot_offset(seq) + 8, len),
                vec![i as u8]
            );
            mq.complete(seq);
        }
    }

    #[test]
    fn backend_call_blocks_until_response() {
        struct DbApp;
        impl AccelApp for DbApp {
            fn on_request(&self, sim: &mut Sim, req: Payload, ctx: WorkerCtx) {
                ctx.call_backend(sim, 0, &req, |sim, ctx, db_resp| {
                    ctx.compute(sim, Duration::from_micros(50), move |sim, ctx| {
                        ctx.reply(sim, &db_resp);
                    });
                });
            }
        }
        let mut sim = Sim::new(0);
        let (_gpu, unit) = gpu_unit();
        let mq = server_mq();
        let client_cfg = MqueueConfig {
            slots: 4,
            slot_size: 256,
            ..MqueueConfig::default()
        };
        let cmem = MemRegion::new(NodeId::host(), client_cfg.required_bytes(), "cmq");
        let cmq = Mqueue::new(MqueueKind::Client, cmem, 0, client_cfg);
        let worker = Worker::new(unit, mq.clone(), Rc::new(DbApp));
        let idx = worker.add_client_mqueue(cmq.clone());
        assert_eq!(idx, 0);
        worker.start();

        // Emulate the SNIC backend bridge: echo the backend request back
        // into the client mqueue's RX ring, uppercased.
        let cmq2 = cmq.clone();
        cmq.set_tx_watcher(move |sim| {
            if let Some((seq, _ret, len)) = cmq2.peek_response() {
                let req = cmq2.mem().read(cmq2.tx_slot_offset(seq) + 8, len);
                cmq2.complete(seq);
                let resp: Vec<u8> = req.iter().map(|b| b.to_ascii_uppercase()).collect();
                let rseq = cmq2.try_reserve(ReturnAddr::Fixed).unwrap();
                let slot = cmq2.encode_slot(rseq, &resp);
                cmq2.mem().write(cmq2.rx_slot_offset(rseq), &slot);
                cmq2.notify_rx(sim);
            }
        });

        inject(&mut sim, &mq, b"key1");
        sim.run();
        assert_eq!(worker.completed(), 1);
        let (seq, _, len) = mq.peek_response().unwrap();
        assert_eq!(mq.mem().read(mq.tx_slot_offset(seq) + 8, len), b"KEY1");
    }

    #[test]
    fn worker_serializes_on_exec_unit() {
        let mut sim = Sim::new(0);
        let (_gpu, unit) = gpu_unit();
        let mq = server_mq();
        let proc = lynx_device::DelayProcessor::new(Duration::from_micros(100));
        let worker = Worker::new(unit, mq.clone(), Rc::new(ProcessorApp::new(Rc::new(proc))));
        worker.start();
        for i in 0..3u8 {
            inject(&mut sim, &mq, &[i]);
        }
        sim.run();
        // Three 100us requests serialized: at least 300us of simulated time.
        assert!(sim.now() >= lynx_sim::Time::from_micros(300));
        assert_eq!(worker.completed(), 3);
    }

    #[test]
    fn injected_crash_kills_the_worker() {
        use lynx_sim::{FaultAction, FaultPlan, Trigger};
        let mut sim = Sim::new(0);
        sim.enable_telemetry();
        let (_gpu, unit) = gpu_unit();
        let mq = server_mq();
        let worker = Worker::new(
            unit,
            mq.clone(),
            Rc::new(ProcessorApp::new(Rc::new(EchoProcessor))),
        );
        worker.start();
        // Second poll attempt crashes the execution unit.
        sim.enable_faults(FaultPlan::new(7).rule(
            format!("accel.{}", mq.label()),
            Trigger::Nth(2),
            FaultAction::Crash,
        ));
        inject(&mut sim, &mq, b"one");
        sim.run();
        assert_eq!(worker.completed(), 1);
        inject(&mut sim, &mq, b"two");
        sim.run();
        assert!(worker.crashed());
        assert_eq!(worker.completed(), 1, "crashed worker serves nothing");
        // First response (uncollected here) + the stuck second request.
        assert_eq!(mq.in_flight(), 2);
        assert_eq!(sim.telemetry().unwrap().counter("accel.crashed"), 1);
    }

    #[test]
    fn injected_hang_delays_but_preserves_work() {
        use lynx_sim::{FaultAction, FaultPlan, Trigger};
        let clean = {
            let mut sim = Sim::new(0);
            let (_gpu, unit) = gpu_unit();
            let mq = server_mq();
            let worker = Worker::new(
                unit,
                mq.clone(),
                Rc::new(ProcessorApp::new(Rc::new(EchoProcessor))),
            );
            worker.start();
            inject(&mut sim, &mq, b"x");
            sim.run();
            assert_eq!(worker.completed(), 1);
            sim.now()
        };
        let mut sim = Sim::new(0);
        let (_gpu, unit) = gpu_unit();
        let mq = server_mq();
        let worker = Worker::new(
            unit,
            mq.clone(),
            Rc::new(ProcessorApp::new(Rc::new(EchoProcessor))),
        );
        worker.start();
        let stall = Duration::from_micros(400);
        sim.enable_faults(FaultPlan::new(7).rule(
            format!("accel.{}", mq.label()),
            Trigger::Nth(1),
            FaultAction::Hang(stall),
        ));
        inject(&mut sim, &mq, b"x");
        sim.run();
        assert_eq!(worker.completed(), 1, "hang delays, it does not drop");
        assert!(sim.now() >= clean + stall);
    }
}
