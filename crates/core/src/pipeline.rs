//! The batched, multi-core SNIC pipeline (§6.2's scaling story).
//!
//! The paper's headline result is that Lynx throughput scales with the
//! number of SmartNIC cores *until the ARM network stack saturates*
//! (≈0.5 M pkt/s UDP on BlueField), and that amortizing per-message
//! costs — RDMA doorbell/verb coalescing and batched mqueue completions —
//! is what makes a wimpy-core SmartNIC competitive. This module holds the
//! configuration and runtime state of that pipeline:
//!
//! * [`PipelineConfig`] — how many simulated SNIC cores run the
//!   dispatcher/forwarder ([`PipelineConfig::snic_cores`]) and how
//!   aggressively each core batches ([`BatchPolicy`]).
//! * [`Pipeline`] — the per-core staging queues the sharded dispatcher
//!   drains. Each incoming request is sharded to core `key % snic_cores`
//!   and drained in deterministic FIFO order, pinned to that core's lane
//!   of the SNIC's [`lynx_net::HostStack`] pool.
//!
//! # Default = legacy
//!
//! The default configuration (`snic_cores = 1`,
//! [`BatchPolicy::Unbatched`]) takes the *exact* pre-pipeline code path:
//! every message is dispatched immediately on the join-shortest-completion
//! lane pool, byte-identical to servers built before this API existed.
//! Batching machinery only engages when the effective batch size can
//! exceed one — [`BatchPolicy::Fixed`]`(1)` is therefore *defined* as
//! equivalent to `Unbatched` (see [`PipelineConfig::is_batched`]), which
//! is what makes "batch size 1 equals unbatched byte-identically" hold by
//! construction.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::{ReturnAddr, ServiceId};

/// How many messages a SNIC core drains per pipeline invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchPolicy {
    /// No batching: each message is dispatched the moment it arrives, on
    /// the shared join-shortest-completion core pool. This is the legacy
    /// (pre-pipeline) behaviour and the default.
    #[default]
    Unbatched,
    /// Drain up to `B` staged messages per invocation. `Fixed(1)` is
    /// equivalent to [`BatchPolicy::Unbatched`] by definition; `Fixed(0)`
    /// is rejected at build time.
    Fixed(usize),
    /// Occupancy-adaptive batching: each drain takes
    /// `staged.clamp(min, max)` messages — small batches (low latency)
    /// when the core is keeping up, large batches (high throughput) when
    /// a backlog builds. `1 <= min <= max` is required, `max >= 2`.
    Adaptive {
        /// Smallest batch a drain may take.
        min: usize,
        /// Largest batch a drain may take.
        max: usize,
    },
}

impl fmt::Display for BatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchPolicy::Unbatched => f.write_str("unbatched"),
            BatchPolicy::Fixed(b) => write!(f, "fixed({b})"),
            BatchPolicy::Adaptive { min, max } => write!(f, "adaptive({min}..{max})"),
        }
    }
}

/// Configuration of the SNIC pipeline: sharding plus batching.
///
/// Constructed through [`crate::LynxServerBuilder::snic_cores`] /
/// [`crate::LynxServerBuilder::batch`] (or set directly on
/// [`crate::testbed::DeployConfig::pipeline`]) and validated at build
/// time: `snic_cores` must be at least 1 and no larger than the stack's
/// lane count, since each pipeline core pins its drain work to one lane
/// of the SNIC's core pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of simulated SNIC cores the dispatcher/forwarder is sharded
    /// across. Requests shard by client key (`key % snic_cores`), mqueue
    /// forwarders by queue index, so each partition drains on its own
    /// core with deterministic round-robin interleaving in the DES.
    pub snic_cores: usize,
    /// Batch-draining policy of each core.
    pub batch: BatchPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            snic_cores: 1,
            batch: BatchPolicy::Unbatched,
        }
    }
}

impl PipelineConfig {
    /// Whether the staged/sharded batch path is engaged.
    ///
    /// `false` for [`BatchPolicy::Unbatched`] and for
    /// [`BatchPolicy::Fixed`]`(1)` — those configurations take the exact
    /// legacy immediate-dispatch path (batch size 1 *is* unbatched), so
    /// same-seed runs are byte-identical with the pre-pipeline server.
    pub fn is_batched(&self) -> bool {
        match self.batch {
            BatchPolicy::Unbatched => false,
            BatchPolicy::Fixed(b) => b >= 2,
            BatchPolicy::Adaptive { .. } => true,
        }
    }

    /// The SNIC core a client key shards to.
    pub fn shard_of(&self, key: u64) -> usize {
        (key % self.snic_cores as u64) as usize
    }

    /// Validates the configuration against the SNIC stack's lane count:
    /// the intrinsic [`Validate`](crate::Validate) invariants plus the
    /// cross-object check that `snic_cores` fits `stack_lanes`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`](crate::Error::InvalidConfig) when
    /// `snic_cores` is 0 or exceeds `stack_lanes`, when the batch policy
    /// is `Fixed(0)`, or when an adaptive range is empty or degenerate.
    pub fn check(&self, stack_lanes: usize) -> crate::Result<()> {
        use crate::validate::{invalid, Validate};
        self.validate()?;
        if self.snic_cores > stack_lanes {
            return Err(invalid(
                "pipeline.snic_cores",
                format!(
                    "pipeline wants {} SNIC cores but the stack pool has only {} lanes",
                    self.snic_cores, stack_lanes
                ),
            ));
        }
        Ok(())
    }

    /// How many messages a drain may take given `staged` waiting ones.
    pub(crate) fn batch_limit(&self, staged: usize) -> usize {
        match self.batch {
            BatchPolicy::Unbatched => 1,
            BatchPolicy::Fixed(b) => b.max(1),
            BatchPolicy::Adaptive { min, max } => staged.clamp(min, max),
        }
    }
}

impl crate::Validate for PipelineConfig {
    fn validate(&self) -> crate::Result<()> {
        use crate::validate::invalid;
        if self.snic_cores == 0 {
            return Err(invalid(
                "pipeline.snic_cores",
                "pipeline needs at least one SNIC core",
            ));
        }
        match self.batch {
            BatchPolicy::Fixed(0) => Err(invalid(
                "pipeline.batch",
                "batch size 0 is meaningless; use BatchPolicy::Unbatched",
            )),
            BatchPolicy::Adaptive { min, max } if min == 0 || min > max || max < 2 => Err(invalid(
                "pipeline.batch",
                format!("adaptive batch range {min}..{max} must satisfy 1 <= min <= max, max >= 2"),
            )),
            _ => Ok(()),
        }
    }
}

/// One request staged on a pipeline core, waiting for its drain cycle.
pub(crate) struct StagedRequest {
    pub(crate) service: ServiceId,
    pub(crate) ret: ReturnAddr,
    pub(crate) key: u64,
    pub(crate) payload: lynx_sim::Payload,
}

struct CoreState {
    staged: VecDeque<StagedRequest>,
    drain_scheduled: bool,
}

struct Inner {
    cfg: PipelineConfig,
    cores: Vec<CoreState>,
}

/// Runtime state of the batched multi-core pipeline: the per-core staging
/// queues and drain scheduling flags of the sharded dispatcher.
///
/// Owned by the [`crate::LynxServer`]; the server stages each incoming
/// request on its shard's queue and drains up to the policy's batch limit
/// per cycle, charging the (amortized) drain cost pinned to that core's
/// stack lane. Handles are cheap clones sharing one state.
#[derive(Clone)]
pub struct Pipeline {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Pipeline")
            .field("snic_cores", &inner.cfg.snic_cores)
            .field("batch", &inner.cfg.batch)
            .field(
                "staged",
                &inner.cores.iter().map(|c| c.staged.len()).sum::<usize>(),
            )
            .finish()
    }
}

impl Pipeline {
    /// Creates the pipeline runtime for a validated configuration.
    pub fn new(cfg: PipelineConfig) -> Pipeline {
        Pipeline {
            inner: Rc::new(RefCell::new(Inner {
                cores: (0..cfg.snic_cores.max(1))
                    .map(|_| CoreState {
                        staged: VecDeque::new(),
                        drain_scheduled: false,
                    })
                    .collect(),
                cfg,
            })),
        }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> PipelineConfig {
        self.inner.borrow().cfg
    }

    /// Messages currently staged (all cores) — waiting for a drain cycle.
    pub fn staged(&self) -> usize {
        self.inner
            .borrow()
            .cores
            .iter()
            .map(|c| c.staged.len())
            .sum()
    }

    /// Stages a request on `core`; returns `true` when the caller must
    /// schedule a drain cycle (none is pending for that core yet).
    pub(crate) fn stage(&self, core: usize, req: StagedRequest) -> bool {
        let mut inner = self.inner.borrow_mut();
        let c = &mut inner.cores[core];
        c.staged.push_back(req);
        if c.drain_scheduled {
            false
        } else {
            c.drain_scheduled = true;
            true
        }
    }

    /// Takes up to the policy's batch limit of staged requests off `core`.
    pub(crate) fn take_batch(&self, core: usize) -> Vec<StagedRequest> {
        let mut inner = self.inner.borrow_mut();
        let limit = {
            let staged = inner.cores[core].staged.len();
            inner.cfg.batch_limit(staged)
        };
        let c = &mut inner.cores[core];
        let n = c.staged.len().min(limit);
        c.staged.drain(..n).collect()
    }

    /// Ends `core`'s drain cycle. Returns `true` when more work is staged
    /// (the caller must start another cycle — the flag stays set); `false`
    /// once the core goes idle and the flag is cleared.
    pub(crate) fn end_drain(&self, core: usize) -> bool {
        let mut inner = self.inner.borrow_mut();
        let c = &mut inner.cores[core];
        if c.staged.is_empty() {
            c.drain_scheduled = false;
            false
        } else {
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_legacy() {
        let cfg = PipelineConfig::default();
        assert_eq!(cfg.snic_cores, 1);
        assert_eq!(cfg.batch, BatchPolicy::Unbatched);
        assert!(!cfg.is_batched());
    }

    #[test]
    fn fixed_one_is_unbatched() {
        let cfg = PipelineConfig {
            snic_cores: 2,
            batch: BatchPolicy::Fixed(1),
        };
        assert!(!cfg.is_batched());
        assert!(PipelineConfig {
            snic_cores: 2,
            batch: BatchPolicy::Fixed(2),
        }
        .is_batched());
        assert!(cfg.check(7).is_ok());
    }

    #[test]
    fn check_rejects_bad_configs() {
        let bad = |cfg: PipelineConfig| cfg.check(7).is_err();
        assert!(bad(PipelineConfig {
            snic_cores: 0,
            batch: BatchPolicy::Unbatched,
        }));
        assert!(bad(PipelineConfig {
            snic_cores: 8,
            batch: BatchPolicy::Unbatched,
        }));
        assert!(bad(PipelineConfig {
            snic_cores: 1,
            batch: BatchPolicy::Fixed(0),
        }));
        assert!(bad(PipelineConfig {
            snic_cores: 1,
            batch: BatchPolicy::Adaptive { min: 3, max: 2 },
        }));
        assert!(bad(PipelineConfig {
            snic_cores: 1,
            batch: BatchPolicy::Adaptive { min: 0, max: 4 },
        }));
        assert!(PipelineConfig {
            snic_cores: 4,
            batch: BatchPolicy::Adaptive { min: 1, max: 16 },
        }
        .check(7)
        .is_ok());
    }

    #[test]
    fn sharding_is_modular() {
        let cfg = PipelineConfig {
            snic_cores: 4,
            batch: BatchPolicy::Fixed(8),
        };
        assert_eq!(cfg.shard_of(0), 0);
        assert_eq!(cfg.shard_of(5), 1);
        assert_eq!(cfg.shard_of(7), 3);
    }

    #[test]
    fn adaptive_limit_follows_occupancy() {
        let cfg = PipelineConfig {
            snic_cores: 1,
            batch: BatchPolicy::Adaptive { min: 2, max: 8 },
        };
        assert_eq!(cfg.batch_limit(0), 2);
        assert_eq!(cfg.batch_limit(5), 5);
        assert_eq!(cfg.batch_limit(50), 8);
    }

    #[test]
    fn staging_coalesces_drains() {
        let p = Pipeline::new(PipelineConfig {
            snic_cores: 2,
            batch: BatchPolicy::Fixed(4),
        });
        let req = |key| StagedRequest {
            service: ServiceId::DEFAULT,
            ret: ReturnAddr::Fixed,
            key,
            payload: lynx_sim::Payload::new(),
        };
        assert!(p.stage(0, req(0)), "first stage on a core schedules");
        assert!(!p.stage(0, req(2)), "second rides the pending drain");
        assert!(p.stage(1, req(1)), "other core schedules its own");
        assert_eq!(p.staged(), 3);
        let batch = p.take_batch(0);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].key, 0);
        assert_eq!(batch[1].key, 2);
        assert!(!p.end_drain(0), "core 0 idle");
        assert!(p.stage(0, req(4)), "idle core schedules again");
        // Core 1 still has one staged: end_drain keeps the cycle alive.
        let _ = p.take_batch(1);
        assert!(!p.end_drain(1));
    }

    #[test]
    fn take_batch_respects_fixed_limit() {
        let p = Pipeline::new(PipelineConfig {
            snic_cores: 1,
            batch: BatchPolicy::Fixed(2),
        });
        for k in 0..5 {
            let _ = p.stage(
                0,
                StagedRequest {
                    service: ServiceId::DEFAULT,
                    ret: ReturnAddr::Fixed,
                    key: k,
                    payload: lynx_sim::Payload::new(),
                },
            );
        }
        assert_eq!(p.take_batch(0).len(), 2);
        assert!(p.end_drain(0), "3 left: cycle continues");
        assert_eq!(p.take_batch(0).len(), 2);
        assert_eq!(p.take_batch(0).len(), 1);
        assert!(!p.end_drain(0));
    }
}
