//! Message dispatch policies (§4.2: "load balancing for stateless
//! services, or steering messages to specific queues for stateful ones").

use std::collections::BTreeSet;
use std::fmt;

use crate::Mqueue;

/// How the Message Dispatcher assigns incoming requests to mqueues.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// Rotate over mqueues (the paper's default; used by the Face
    /// Verification server's 28 mqueues "managed in a round-robin manner").
    #[default]
    RoundRobin,
    /// Pick the mqueue with the fewest requests in flight.
    LeastLoaded,
    /// Hash the client's identity so a given client always lands on the
    /// same mqueue (stateful services).
    Steering,
}

impl DispatchPolicy {
    /// Stable snake_case name used in telemetry counters
    /// (`dispatch.picks.<name>`) and trace events.
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round_robin",
            DispatchPolicy::LeastLoaded => "least_loaded",
            DispatchPolicy::Steering => "steering",
        }
    }
}

/// The dispatcher: picks a target mqueue for each request.
#[derive(Default)]
pub struct Dispatcher {
    policy: DispatchPolicy,
    cursor: usize,
    quarantined: BTreeSet<usize>,
    parked: BTreeSet<usize>,
}

impl fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dispatcher")
            .field("policy", &self.policy)
            .field("cursor", &self.cursor)
            .field("quarantined", &self.quarantined)
            .field("parked", &self.parked)
            .finish()
    }
}

impl Dispatcher {
    /// Creates a dispatcher with the given policy.
    pub fn new(policy: DispatchPolicy) -> Dispatcher {
        Dispatcher {
            policy,
            cursor: 0,
            quarantined: BTreeSet::new(),
            parked: BTreeSet::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Removes mqueue `index` from the eligible set; subsequent picks
    /// redistribute its traffic to the surviving queues. Idempotent.
    /// Used by the SNIC health monitor when an accelerator stalls or
    /// crashes.
    pub fn quarantine(&mut self, index: usize) {
        self.quarantined.insert(index);
    }

    /// Re-admits a previously quarantined mqueue. Idempotent; returns
    /// `true` if the queue was actually quarantined.
    pub fn readmit(&mut self, index: usize) -> bool {
        self.quarantined.remove(&index)
    }

    /// Whether mqueue `index` is currently quarantined.
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.quarantined.contains(&index)
    }

    /// Number of currently quarantined mqueues.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Parks mqueue `index`: removes it from the eligible set so its
    /// worker can be quiesced and drained. Idempotent. Parking is the
    /// control plane's *scale-in* primitive and is deliberately distinct
    /// from [`Dispatcher::quarantine`]: the health monitor auto-readmits
    /// quarantined queues once they look healthy again, whereas a parked
    /// queue stays out of rotation until the control plane explicitly
    /// [`Dispatcher::unpark`]s it.
    pub fn park(&mut self, index: usize) {
        self.parked.insert(index);
    }

    /// Returns a parked mqueue to rotation (scale-out). Idempotent;
    /// returns `true` if the queue was actually parked.
    pub fn unpark(&mut self, index: usize) -> bool {
        self.parked.remove(&index)
    }

    /// Whether mqueue `index` is currently parked.
    pub fn is_parked(&self, index: usize) -> bool {
        self.parked.contains(&index)
    }

    /// Number of currently parked mqueues.
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    fn excluded(&self, i: usize) -> bool {
        self.quarantined.contains(&i) || self.parked.contains(&i)
    }

    fn eligible(&self, mqueues: &[Mqueue], i: usize) -> bool {
        !self.excluded(i) && mqueues[i].in_flight() < mqueues[i].config().slots
    }

    /// Picks a target mqueue index for a request from `client_key`,
    /// skipping full and quarantined queues. Returns `None` when no
    /// eligible queue has room (the request is dropped, as UDP overload
    /// would).
    pub fn pick(&mut self, mqueues: &[Mqueue], client_key: u64) -> Option<usize> {
        if mqueues.is_empty() {
            return None;
        }
        let n = mqueues.len();
        let start = match self.policy {
            DispatchPolicy::RoundRobin => self.cursor % n,
            DispatchPolicy::LeastLoaded => mqueues
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.excluded(*i))
                .min_by_key(|(_, q)| q.in_flight())
                .map(|(i, _)| i)
                .unwrap_or(0),
            DispatchPolicy::Steering => (client_key % n as u64) as usize,
        };
        // Steering must not fail over to another queue while its target is
        // healthy (that would break state affinity), but a *quarantined or
        // parked* target is deterministically re-homed by linear probing —
        // the client's state is lost with the dead (or drained) accelerator
        // anyway; the others skip full/quarantined/parked queues.
        let picked = match self.policy {
            DispatchPolicy::Steering => {
                let target = (0..n)
                    .map(|i| (start + i) % n)
                    .find(|&i| !self.excluded(i))?;
                self.eligible(mqueues, target).then_some(target)
            }
            _ => (0..n)
                .map(|i| (start + i) % n)
                .find(|&i| self.eligible(mqueues, i)),
        };
        // Round-robin rotates over the *eligible* set: the cursor moves
        // past the queue actually chosen, so a contiguous run of parked
        // or full queues doesn't funnel every wrapped pick onto the same
        // survivor.
        if self.policy == DispatchPolicy::RoundRobin {
            if let Some(i) = picked {
                self.cursor = (i + 1) % n;
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MqueueConfig, MqueueKind, ReturnAddr};
    use lynx_fabric::{MemRegion, NodeId};

    fn queues(n: usize, slots: usize) -> Vec<Mqueue> {
        (0..n)
            .map(|i| {
                let cfg = MqueueConfig {
                    slots,
                    slot_size: 128,
                    ..MqueueConfig::default()
                };
                let mem = MemRegion::new(NodeId::host(), cfg.required_bytes(), format!("mq{i}"));
                Mqueue::new(MqueueKind::Server, mem, 0, cfg)
            })
            .collect()
    }

    #[test]
    fn round_robin_rotates() {
        let qs = queues(3, 4);
        let mut d = Dispatcher::new(DispatchPolicy::RoundRobin);
        let picks: Vec<_> = (0..6).map(|_| d.pick(&qs, 0).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_full_queues() {
        let qs = queues(3, 1);
        // Fill queue 0.
        qs[0].try_reserve(ReturnAddr::Fixed).unwrap();
        let mut d = Dispatcher::new(DispatchPolicy::RoundRobin);
        assert_eq!(d.pick(&qs, 0), Some(1)); // cursor 0 -> skip to 1
    }

    #[test]
    fn least_loaded_prefers_idle_queue() {
        let qs = queues(3, 8);
        qs[0].try_reserve(ReturnAddr::Fixed).unwrap();
        qs[0].try_reserve(ReturnAddr::Fixed).unwrap();
        qs[1].try_reserve(ReturnAddr::Fixed).unwrap();
        let mut d = Dispatcher::new(DispatchPolicy::LeastLoaded);
        assert_eq!(d.pick(&qs, 0), Some(2));
    }

    #[test]
    fn steering_is_sticky_per_client() {
        let qs = queues(4, 8);
        let mut d = Dispatcher::new(DispatchPolicy::Steering);
        let a = d.pick(&qs, 0xabcd).unwrap();
        for _ in 0..10 {
            assert_eq!(d.pick(&qs, 0xabcd), Some(a));
        }
        // A different client key may land elsewhere.
        let b = d.pick(&qs, 0xabce).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn steering_drops_when_its_queue_is_full() {
        let qs = queues(2, 1);
        let mut d = Dispatcher::new(DispatchPolicy::Steering);
        let target = d.pick(&qs, 7).unwrap();
        qs[target].try_reserve(ReturnAddr::Fixed).unwrap();
        assert_eq!(d.pick(&qs, 7), None);
    }

    #[test]
    fn all_full_returns_none() {
        let qs = queues(2, 1);
        for q in &qs {
            q.try_reserve(ReturnAddr::Fixed).unwrap();
        }
        let mut d = Dispatcher::new(DispatchPolicy::RoundRobin);
        assert_eq!(d.pick(&qs, 0), None);
        assert_eq!(
            Dispatcher::new(DispatchPolicy::LeastLoaded).pick(&qs, 0),
            None
        );
    }

    #[test]
    fn empty_queue_set_returns_none() {
        let mut d = Dispatcher::default();
        assert_eq!(d.pick(&[], 0), None);
    }

    #[test]
    fn quarantined_queue_is_skipped_and_readmitted() {
        let qs = queues(3, 4);
        let mut d = Dispatcher::new(DispatchPolicy::RoundRobin);
        d.quarantine(1);
        assert!(d.is_quarantined(1));
        let picks: Vec<_> = (0..6).map(|_| d.pick(&qs, 0).unwrap()).collect();
        assert!(!picks.contains(&1), "quarantined queue must get no traffic");
        assert!(picks.contains(&0) && picks.contains(&2));
        assert!(d.readmit(1));
        assert!(!d.readmit(1), "second readmit is a no-op");
        let picks: Vec<_> = (0..6).map(|_| d.pick(&qs, 0).unwrap()).collect();
        assert!(picks.contains(&1), "readmitted queue serves again");
    }

    #[test]
    fn least_loaded_never_picks_quarantined() {
        let qs = queues(3, 8);
        // Queue 1 is idle (most attractive) but quarantined.
        qs[0].try_reserve(ReturnAddr::Fixed).unwrap();
        qs[2].try_reserve(ReturnAddr::Fixed).unwrap();
        qs[2].try_reserve(ReturnAddr::Fixed).unwrap();
        let mut d = Dispatcher::new(DispatchPolicy::LeastLoaded);
        d.quarantine(1);
        assert_eq!(d.pick(&qs, 0), Some(0));
    }

    #[test]
    fn steering_rehomes_deterministically_around_quarantine() {
        let qs = queues(4, 8);
        let mut d = Dispatcher::new(DispatchPolicy::Steering);
        let home = d.pick(&qs, 42).unwrap();
        d.quarantine(home);
        let fallback = d.pick(&qs, 42).unwrap();
        assert_eq!(fallback, (home + 1) % 4, "linear probe to next survivor");
        for _ in 0..5 {
            assert_eq!(d.pick(&qs, 42), Some(fallback), "re-homing is sticky");
        }
        d.readmit(home);
        assert_eq!(d.pick(&qs, 42), Some(home), "affinity restored on readmit");
    }

    #[test]
    fn parked_queue_is_skipped_until_unparked() {
        let qs = queues(3, 4);
        let mut d = Dispatcher::new(DispatchPolicy::RoundRobin);
        d.park(2);
        assert!(d.is_parked(2));
        assert_eq!(d.parked_count(), 1);
        let picks: Vec<_> = (0..6).map(|_| d.pick(&qs, 0).unwrap()).collect();
        assert!(!picks.contains(&2), "parked queue must get no traffic");
        assert!(d.unpark(2));
        assert!(!d.unpark(2), "second unpark is a no-op");
        let picks: Vec<_> = (0..6).map(|_| d.pick(&qs, 0).unwrap()).collect();
        assert!(picks.contains(&2), "unparked queue serves again");
    }

    #[test]
    fn least_loaded_never_picks_parked() {
        let qs = queues(3, 8);
        // Queue 0 is idle (most attractive) but parked.
        qs[1].try_reserve(ReturnAddr::Fixed).unwrap();
        qs[2].try_reserve(ReturnAddr::Fixed).unwrap();
        qs[2].try_reserve(ReturnAddr::Fixed).unwrap();
        let mut d = Dispatcher::new(DispatchPolicy::LeastLoaded);
        d.park(0);
        assert_eq!(d.pick(&qs, 0), Some(1));
    }

    #[test]
    fn steering_rehomes_around_parked_and_restores_on_unpark() {
        let qs = queues(4, 8);
        let mut d = Dispatcher::new(DispatchPolicy::Steering);
        let home = d.pick(&qs, 42).unwrap();
        d.park(home);
        let fallback = d.pick(&qs, 42).unwrap();
        assert_eq!(fallback, (home + 1) % 4, "linear probe to next survivor");
        d.unpark(home);
        assert_eq!(d.pick(&qs, 42), Some(home), "affinity restored on unpark");
    }

    #[test]
    fn parked_and_quarantined_are_independent() {
        let qs = queues(2, 4);
        let mut d = Dispatcher::new(DispatchPolicy::RoundRobin);
        d.park(0);
        d.quarantine(0);
        // Readmitting from quarantine must not unpark: scale-in decisions
        // survive health-monitor readmission.
        assert!(d.readmit(0));
        assert!(d.is_parked(0));
        let picks: Vec<_> = (0..4).map(|_| d.pick(&qs, 0).unwrap()).collect();
        assert!(picks.iter().all(|&i| i == 1), "still parked after readmit");
        d.unpark(0);
        assert!(!d.is_quarantined(0));
    }

    #[test]
    fn all_parked_returns_none() {
        let qs = queues(2, 4);
        let mut d = Dispatcher::new(DispatchPolicy::RoundRobin);
        d.park(0);
        d.park(1);
        assert_eq!(d.pick(&qs, 0), None);
    }

    #[test]
    fn all_quarantined_returns_none() {
        let qs = queues(2, 4);
        let mut d = Dispatcher::new(DispatchPolicy::RoundRobin);
        d.quarantine(0);
        d.quarantine(1);
        assert_eq!(d.pick(&qs, 0), None);
        let mut d = Dispatcher::new(DispatchPolicy::Steering);
        d.quarantine(0);
        d.quarantine(1);
        assert_eq!(d.pick(&qs, 0), None);
    }
}
