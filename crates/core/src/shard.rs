//! Mapping Lynx deployments onto the partitioned simulation engine.
//!
//! `lynx_sim::shard` provides the generic machinery — shards, conservative
//! windows, deterministic merge. This module binds it to the *Lynx* shape
//! of a simulation:
//!
//! * [`ShardPlan`] — the pipeline-lane → shard mapping. A Lynx server's
//!   SNIC pipeline is a pool of per-core lanes
//!   ([`PipelineConfig::snic_cores`](crate::PipelineConfig)); when a
//!   scale-out experiment replicates the server, the plan says which
//!   replica (and therefore which shard) each lane lives on.
//! * [`conservative_window`] — discovers a safe cross-shard window width
//!   from the modelled interconnects: the minimum one-way latency across
//!   the datacenter network ([`Network::min_path_latency`]) and every
//!   RDMA wire profile in play ([`WireProfile::min_one_way`]). Nothing in
//!   the model can cross shards faster than the slowest of these bounds
//!   allows, so the window is conservative by construction.
//! * [`ReplicaSet`] — the replica-per-shard scale-out harness: each shard
//!   hosts one complete server group (machine + GPUs + its own clients),
//!   the layout of `fig8b_scaleout` and the 1M-client experiment. With no
//!   cross-replica links the engine runs a single window and the replicas
//!   are embarrassingly parallel; [`ReplicaSet::ring`] optionally declares
//!   a heartbeat ring so differential tests can exercise the windowed
//!   path on the same topology.
//!
//! Determinism is inherited wholesale: a [`ReplicaSet`] run merges its
//! telemetry by `(time, shard, order)` and produces byte-identical output
//! at any thread count (see `lynx_sim::shard`).

use std::time::Duration;

use lynx_fabric::WireProfile;
use lynx_net::Network;
use lynx_sim::shard::FinishFn;
use lynx_sim::{Partition, PartitionReport, ShardId, Sim, SimConfig, Time};

/// Static assignment of SNIC pipeline lanes to shards.
///
/// The mapping is round-robin by lane index — a pure function of
/// `(lanes, shards)`, so the same plan is computed on every thread and
/// every run. Lanes on the same shard share one simulated clock and may
/// exchange work without cross-shard traffic; lanes on different shards
/// may only interact through declared links.
///
/// ```
/// use lynx_core::shard::ShardPlan;
///
/// let plan = ShardPlan::new(8, 3);
/// assert_eq!(plan.shard_for_lane(0), 0);
/// assert_eq!(plan.shard_for_lane(4), 1);
/// assert_eq!(plan.lanes_on(0), vec![0, 3, 6]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    lanes: usize,
    shards: usize,
}

impl ShardPlan {
    /// Plans `lanes` pipeline lanes over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when either count is zero.
    pub fn new(lanes: usize, shards: usize) -> ShardPlan {
        assert!(lanes > 0, "a plan needs at least one lane");
        assert!(shards > 0, "a plan needs at least one shard");
        ShardPlan { lanes, shards }
    }

    /// Total pipeline lanes planned.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of shards the lanes are spread over (capped at the lane
    /// count — extra shards would sit empty).
    pub fn shards(&self) -> usize {
        self.shards.min(self.lanes)
    }

    /// The shard hosting `lane`.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn shard_for_lane(&self, lane: usize) -> usize {
        assert!(lane < self.lanes, "lane {lane} out of range");
        lane % self.shards()
    }

    /// The lanes hosted on `shard`, in ascending order.
    pub fn lanes_on(&self, shard: usize) -> Vec<usize> {
        (0..self.lanes)
            .filter(|&l| self.shard_for_lane(l) == shard)
            .collect()
    }
}

/// Discovers a conservative cross-shard window width from the modelled
/// interconnects.
///
/// Returns the minimum of the network's smallest host-to-host one-way
/// propagation latency and every wire profile's earliest one-way verb
/// landing time — i.e. a lower bound on how fast *anything* in the model
/// can cross between shards. Returns `None` when no bound exists (a
/// network with fewer than two hosts and no wires), in which case the
/// partition should run unlinked.
pub fn conservative_window(net: &Network, wires: &[WireProfile]) -> Option<Duration> {
    let mut window = net.min_path_latency();
    for wire in wires {
        let w = wire.min_one_way();
        window = Some(match window {
            Some(cur) => cur.min(w),
            None => w,
        });
    }
    window
}

/// Replica-per-shard scale-out harness.
///
/// Each replica is one self-contained server group — typically a
/// [`Machine`](crate::testbed::Machine) with its GPUs, a built
/// [`LynxServer`](crate::LynxServer), and the clients that drive it —
/// constructed by its build closure *on the shard's worker thread* against
/// the shard's private [`Sim`]. Replica `i` is seeded
/// `derive_seed(root, "shard/i")`, so adding replicas never perturbs the
/// event streams of existing ones.
///
/// Without links the engine runs all replicas to the deadline in a single
/// conservative window — the scale-out case is embarrassingly parallel
/// and the per-window barrier cost is paid exactly once. [`ReplicaSet::ring`]
/// adds a cross-replica heartbeat ring for tests that must exercise
/// windowed message exchange on the same topology.
pub struct ReplicaSet<V> {
    partition: Partition<V>,
    ids: Vec<ShardId>,
}

impl<V> std::fmt::Debug for ReplicaSet<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field("replicas", &self.ids.len())
            .finish()
    }
}

impl<V: Send + 'static> ReplicaSet<V> {
    /// Creates an empty replica set with the given root seed and engine
    /// configuration (thread cap + per-shard scheduler).
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`SimConfig::validate`].
    pub fn new(seed: u64, config: SimConfig) -> ReplicaSet<V> {
        ReplicaSet {
            partition: Partition::new(seed, config),
            ids: Vec::new(),
        }
    }

    /// Enables per-replica telemetry, merged deterministically in the
    /// report.
    pub fn telemetry(mut self, on: bool) -> ReplicaSet<V> {
        self.partition = self.partition.telemetry(on);
        self
    }

    /// Adds one replica. `build` runs on the replica's worker thread with
    /// the replica's private simulator and returns the finisher that
    /// extracts the replica's output after the run.
    pub fn add_replica(
        &mut self,
        name: &str,
        build: impl FnOnce(&mut Sim) -> FinishFn<V> + Send + 'static,
    ) -> ShardId {
        let id = self.partition.add_shard(name, move |sim, _ctx| build(sim));
        self.ids.push(id);
        id
    }

    /// Declares a heartbeat ring over all replicas added so far: replica
    /// `i` links to replica `(i + 1) % n` with the given one-way latency,
    /// which becomes the conservative window width.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two replicas, or on a zero latency.
    pub fn ring(&mut self, latency: Duration) {
        assert!(self.ids.len() >= 2, "a ring needs at least two replicas");
        let n = self.ids.len();
        for i in 0..n {
            let a = self.ids[i];
            let b = self.ids[(i + 1) % n];
            if a != b {
                // Links are symmetric and keyed per pair, so the n == 2
                // case (both directions visit the same pair) is harmless.
                self.partition.link(a, b, latency);
            }
        }
    }

    /// Number of replicas added so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no replica has been added yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The conservative window the run will use (`None` without links).
    pub fn window(&self) -> Option<Duration> {
        self.partition.window()
    }

    /// Runs every replica until `deadline` and collects the merged report.
    pub fn run_until(self, deadline: Time) -> PartitionReport<V> {
        self.partition.run_until(deadline)
    }

    /// Runs every replica until all queues drain.
    pub fn run(self) -> PartitionReport<V> {
        self.partition.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynx_net::LinkSpec;

    #[test]
    fn plan_is_round_robin_and_total() {
        let plan = ShardPlan::new(8, 3);
        assert_eq!(plan.lanes(), 8);
        assert_eq!(plan.shards(), 3);
        let mut seen = vec![];
        for s in 0..plan.shards() {
            seen.extend(plan.lanes_on(s));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>(), "every lane placed once");
    }

    #[test]
    fn plan_caps_shards_at_lane_count() {
        let plan = ShardPlan::new(2, 8);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.shard_for_lane(1), 1);
    }

    #[test]
    fn window_discovery_takes_the_minimum_bound() {
        let net = Network::new();
        net.add_host("a", LinkSpec::gbps40());
        net.add_host("b", LinkSpec::gbps40());
        // Network path: 500ns + 300ns + 500ns = 1.3us; loopback RDMA wire:
        // 600ns + 100ns = 700ns — the tighter bound wins.
        let w = conservative_window(&net, &[WireProfile::loopback()]).unwrap();
        assert_eq!(w, Duration::from_nanos(700));
        // Without wires the network path is the bound.
        let w = conservative_window(&net, &[]).unwrap();
        assert_eq!(w, Duration::from_nanos(1300));
        // No hosts, no wires: no bound.
        assert_eq!(conservative_window(&Network::new(), &[]), None);
    }

    #[test]
    fn replicas_run_unlinked_in_one_window() {
        let mut set: ReplicaSet<u64> = ReplicaSet::new(7, SimConfig::new().threads(2));
        for r in 0..4u64 {
            set.add_replica(&format!("replica/{r}"), move |sim| {
                for i in 0..10u64 {
                    sim.schedule_in(Duration::from_micros(i + 1), |_| {});
                }
                Box::new(move |sim: &mut Sim| sim.executed() + r)
            });
        }
        assert_eq!(set.window(), None);
        let report = set.run_until(Time::from_millis(1));
        assert_eq!(report.windows, 1, "unlinked replicas run one window");
        assert_eq!(report.outputs.len(), 4);
        assert!(report.executed() >= 40);
    }

    #[test]
    fn ring_links_make_a_window_and_stay_deterministic() {
        let run = |threads: usize| {
            let mut set: ReplicaSet<u64> = ReplicaSet::new(11, SimConfig::new().threads(threads));
            for r in 0..3u64 {
                set.add_replica(&format!("replica/{r}"), move |sim| {
                    sim.schedule_in(Duration::from_micros(r + 1), |_| {});
                    Box::new(|sim: &mut Sim| sim.executed())
                });
            }
            set.ring(Duration::from_micros(2));
            assert_eq!(set.window(), Some(Duration::from_micros(2)));
            set.run_until(Time::from_micros(50))
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one.outputs, eight.outputs);
        assert_eq!(one.counters(), eight.counters());
    }
}
