//! Property-based tests of mqueues and dispatch.

use proptest::prelude::*;

use lynx_core::{DispatchPolicy, Dispatcher, Mqueue, MqueueConfig, MqueueKind, ReturnAddr};
use lynx_fabric::{MemRegion, NodeId};
use lynx_net::{HostId, SockAddr};
use lynx_sim::Sim;

fn mq(slots: usize, slot_size: usize) -> Mqueue {
    let cfg = MqueueConfig {
        slots,
        slot_size,
        ..MqueueConfig::default()
    };
    let mem = MemRegion::new(NodeId::host(), cfg.required_bytes(), "pq");
    Mqueue::new(MqueueKind::Server, mem, 0, cfg)
}

fn land(q: &Mqueue, seq: u64, payload: &[u8]) {
    let slot = q.encode_slot(seq, payload);
    q.mem().write(q.rx_slot_offset(seq), &slot);
}

proptest! {
    /// Arbitrary payloads survive the full request/response slot pipeline
    /// byte-for-byte, across ring wraparound.
    #[test]
    fn mqueue_payload_integrity(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..120), 1..60),
        slots in 1usize..8,
    ) {
        let mut sim = Sim::new(0);
        let q = mq(slots, 128);
        for payload in &payloads {
            let seq = q.try_reserve(ReturnAddr::Fixed).unwrap();
            land(&q, seq, payload);
            let (s, got) = q.acc_pop_request().unwrap();
            prop_assert_eq!(s, seq);
            prop_assert_eq!(&got, payload);
            // Echo it back.
            q.acc_push_response(&mut sim, seq, &got);
            let (s2, _, len) = q.begin_pull().unwrap();
            let resp = q.mem().read(q.tx_slot_offset(s2) + 8, len);
            prop_assert_eq!(&resp, payload);
            q.complete(s2);
        }
        prop_assert_eq!(q.drops(), 0);
        prop_assert_eq!(q.in_flight(), 0);
    }

    /// Flow control: the mqueue never admits more than `slots` requests
    /// in flight, and recovers exactly as responses complete.
    #[test]
    fn mqueue_flow_control(slots in 1usize..16, extra in 1usize..16) {
        let mut sim = Sim::new(0);
        let q = mq(slots, 64);
        let mut reserved = Vec::new();
        for _ in 0..slots {
            reserved.push(q.try_reserve(ReturnAddr::Fixed).unwrap());
        }
        for _ in 0..extra {
            prop_assert!(q.try_reserve(ReturnAddr::Fixed).is_err());
        }
        prop_assert_eq!(q.drops() as usize, extra);
        // Drain one request: exactly one new slot opens.
        let seq = reserved[0];
        land(&q, seq, b"x");
        q.acc_pop_request().unwrap();
        q.acc_push_response(&mut sim, seq, b"y");
        let (s, _, _) = q.begin_pull().unwrap();
        q.complete(s);
        prop_assert!(q.try_reserve(ReturnAddr::Fixed).is_ok());
        prop_assert!(q.try_reserve(ReturnAddr::Fixed).is_err());
    }

    /// Reply routing: responses return the exact client address of their
    /// request, in order, for any interleaving of clients.
    #[test]
    fn mqueue_reply_routing(clients in proptest::collection::vec(0u32..64, 1..32)) {
        let mut sim = Sim::new(0);
        let q = mq(64, 64);
        for (i, &c) in clients.iter().enumerate() {
            let ret = ReturnAddr::Udp(SockAddr::new(HostId(c), c as u16));
            let seq = q.try_reserve(ret).unwrap();
            land(&q, seq, &[i as u8]);
        }
        for (i, &c) in clients.iter().enumerate() {
            let (seq, payload) = q.acc_pop_request().unwrap();
            prop_assert_eq!(payload, vec![i as u8]);
            q.acc_push_response(&mut sim, seq, &[i as u8]);
            let (s, ret, _) = q.begin_pull().unwrap();
            prop_assert_eq!(ret, ReturnAddr::Udp(SockAddr::new(HostId(c), c as u16)));
            q.complete(s);
        }
    }

    /// Every dispatcher policy picks only valid, non-full queues, and
    /// round-robin visits all queues fairly.
    #[test]
    fn dispatcher_picks_are_valid(
        n in 1usize..12,
        picks in 1usize..100,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::LeastLoaded,
            DispatchPolicy::Steering,
        ][policy_idx];
        let qs: Vec<Mqueue> = (0..n).map(|_| mq(4, 64)).collect();
        let mut d = Dispatcher::new(policy);
        let mut counts = vec![0usize; n];
        for key in 0..picks as u64 {
            if let Some(i) = d.pick(&qs, key) {
                prop_assert!(i < n);
                prop_assert!(qs[i].in_flight() < qs[i].config().slots);
                counts[i] += 1;
                // Occupy the slot so load accumulates.
                if qs[i].in_flight() < qs[i].config().slots {
                    let _ = qs[i].try_reserve(ReturnAddr::Fixed);
                }
            }
        }
        if policy == DispatchPolicy::RoundRobin && picks >= 4 * n {
            // All queues fill up under sustained round-robin.
            prop_assert!(counts.iter().all(|&c| c > 0));
        }
    }

    /// Steering always maps the same key to the same queue.
    #[test]
    fn steering_is_deterministic(n in 1usize..12, keys in proptest::collection::vec(any::<u64>(), 1..40)) {
        let qs: Vec<Mqueue> = (0..n).map(|_| mq(1024, 64)).collect();
        let mut d1 = Dispatcher::new(DispatchPolicy::Steering);
        let mut d2 = Dispatcher::new(DispatchPolicy::Steering);
        for &k in &keys {
            prop_assert_eq!(d1.pick(&qs, k), d2.pick(&qs, k));
        }
    }
}
