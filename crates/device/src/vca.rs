//! The Intel Visual Compute Accelerator (§5.4, §6.2).

use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use lynx_sim::{Server, Sim, SiteCounter};

use crate::profile::VcaProfile;
use crate::CpuKind;

/// One of the VCA's three independent Intel E3 processors.
///
/// Each node runs Linux with its own IP, reached from the host via
/// IP-over-PCIe tunneling; SGX provides trusted execution for the secure
/// computing server of §6.2.
#[derive(Clone)]
pub struct VcaNode {
    core: Server,
    index: usize,
    sites: Rc<VcaSites>,
}

#[derive(Debug, Default)]
struct VcaSites {
    execs: SiteCounter,
    transitions: SiteCounter,
}

impl fmt::Debug for VcaNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VcaNode")
            .field("index", &self.index)
            .field("jobs", &self.core.jobs())
            .finish()
    }
}

impl VcaNode {
    /// Executes `work` inside the SGX enclave with `transitions` enclave
    /// boundary crossings (ecalls/ocalls), each costing
    /// [`VcaProfile::SGX_TRANSITION`].
    ///
    /// The Lynx path uses **zero** transitions per request: the 20-line I/O
    /// library is statically linked *into* the enclave and polls the mqueue
    /// from inside (§6.2), whereas the baseline pays an ecall/ocall pair
    /// per request.
    pub fn exec_enclave(
        &self,
        sim: &mut Sim,
        work: Duration,
        transitions: u32,
        done: impl FnOnce(&mut Sim) + 'static,
    ) {
        if let Some(t) = sim.telemetry() {
            self.sites.execs.add(t, "device.vca.enclave_execs", 1);
            self.sites
                .transitions
                .add(t, "device.vca.sgx_transitions", u64::from(transitions));
        }
        let total = work + VcaProfile::SGX_TRANSITION * transitions;
        self.core.submit(sim, total, done);
    }

    /// Requests executed on this node so far.
    pub fn requests(&self) -> u64 {
        self.core.jobs()
    }

    /// Latency for enclave code to poll + access an mqueue in mapped host
    /// memory over PCIe (the paper's workaround for the RDMA-into-VCA bug).
    pub fn mapped_mqueue_access(&self) -> Duration {
        VcaProfile::MAPPED_POLL + VcaProfile::MAPPED_ACCESS
    }
}

/// The VCA card: three E3 nodes behind a PCIe switch.
#[derive(Clone, Debug)]
pub struct Vca {
    nodes: Vec<VcaNode>,
}

impl Default for Vca {
    fn default() -> Self {
        Self::new()
    }
}

impl Vca {
    /// Creates the three-node card.
    pub fn new() -> Vca {
        Vca {
            nodes: (0..3)
                .map(|index| VcaNode {
                    core: Server::new(CpuKind::E3.speed()),
                    index,
                    sites: Rc::new(VcaSites::default()),
                })
                .collect(),
        }
    }

    /// The card's nodes (always three).
    pub fn nodes(&self) -> &[VcaNode] {
        &self.nodes
    }

    /// A specific node.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn node(&self, i: usize) -> VcaNode {
        self.nodes[i].clone()
    }

    /// One-way latency of the baseline network path into a node: host
    /// bridge forwarding plus IP-over-PCIe tunneling. The Lynx path skips
    /// both (SmartNIC writes the mqueue in mapped memory directly).
    pub fn bridge_path_latency(&self) -> Duration {
        VcaProfile.bridge_path_latency()
    }

    /// Per-message kernel network stack costs on a VCA node `(rx, tx)` —
    /// paid by the baseline, bypassed by Lynx.
    pub fn kernel_stack_cost(&self) -> (Duration, Duration) {
        VcaProfile.kernel_stack_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynx_sim::Time;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn three_nodes() {
        assert_eq!(Vca::new().nodes().len(), 3);
    }

    #[test]
    fn enclave_transitions_cost_extra() {
        let mut sim = Sim::new(0);
        let vca = Vca::new();
        let node = vca.node(0);
        let t0 = Rc::new(Cell::new(Time::ZERO));
        let t2 = Rc::new(Cell::new(Time::ZERO));
        let a = Rc::clone(&t0);
        node.exec_enclave(&mut sim, Duration::from_micros(9), 0, move |sim| {
            a.set(sim.now());
        });
        sim.run();
        let mut sim = Sim::new(0);
        let node = Vca::new().node(0);
        let b = Rc::clone(&t2);
        node.exec_enclave(&mut sim, Duration::from_micros(9), 2, move |sim| {
            b.set(sim.now());
        });
        sim.run();
        // Two transitions at 8us each, scaled by the E3's 0.9 speed.
        let diff = t2.get() - t0.get();
        assert!(diff > Duration::from_micros(17) && diff < Duration::from_micros(19));
    }

    #[test]
    fn bridge_path_is_much_slower_than_mapped_access() {
        let vca = Vca::new();
        let node = vca.node(0);
        assert!(vca.bridge_path_latency() > node.mapped_mqueue_access() * 4);
    }
}
