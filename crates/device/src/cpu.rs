//! Host and SmartNIC CPU models.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use lynx_net::Platform;
use lynx_sim::{MultiServer, Server};

use crate::profile::{BluefieldProfile, XeonProfile};
use crate::LlcModel;

/// CPU microarchitecture of a processing element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CpuKind {
    /// Intel Xeon E5-2620 v2 (the testbed's host CPU, 6 cores).
    XeonE5,
    /// ARM Cortex-A72 @ 800 MHz (BlueField's cores).
    ArmA72,
    /// Intel E3 (the VCA's per-node processors).
    E3,
}

impl CpuKind {
    /// Relative speed for general application work (Xeon = 1.0).
    pub fn speed(self) -> f64 {
        match self {
            CpuKind::XeonE5 => 1.0,
            CpuKind::ArmA72 => BluefieldProfile::RELATIVE_SPEED,
            CpuKind::E3 => 0.9,
        }
    }

    /// The network-stack platform this CPU maps to.
    pub fn platform(self) -> Platform {
        match self {
            CpuKind::XeonE5 | CpuKind::E3 => Platform::Xeon,
            CpuKind::ArmA72 => Platform::ArmA72,
        }
    }
}

#[derive(Debug)]
struct Inner {
    kind: CpuKind,
    total: usize,
    taken: usize,
}

/// A host (or SmartNIC) CPU: a fixed budget of cores handed out to
/// workloads, plus the shared last-level cache.
///
/// Core allocation is explicit so experiments can reproduce the paper's
/// configurations ("memcached running on five host cores ... and LeNet with
/// Lynx on the sixth host core", §6.3) and over-allocation is a setup bug
/// caught by a panic.
///
/// # Example
///
/// ```
/// use lynx_device::{CpuKind, HostCpu};
///
/// let cpu = HostCpu::new(CpuKind::XeonE5, 6);
/// let lynx_core = cpu.take_pool(1);
/// let memcached_cores = cpu.take_pool(5);
/// assert_eq!(cpu.remaining(), 0);
/// # let _ = (lynx_core, memcached_cores);
/// ```
#[derive(Clone)]
pub struct HostCpu {
    inner: Rc<RefCell<Inner>>,
    llc: LlcModel,
}

impl fmt::Debug for HostCpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("HostCpu")
            .field("kind", &inner.kind)
            .field("total", &inner.total)
            .field("taken", &inner.taken)
            .finish()
    }
}

impl HostCpu {
    /// Creates a CPU with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(kind: CpuKind, cores: usize) -> HostCpu {
        assert!(cores > 0, "a CPU needs at least one core");
        HostCpu {
            inner: Rc::new(RefCell::new(Inner {
                kind,
                total: cores,
                taken: 0,
            })),
            llc: LlcModel::new(),
        }
    }

    /// The testbed host CPU: a 6-core Xeon E5-2620 v2.
    pub fn xeon_e5() -> HostCpu {
        HostCpu::new(CpuKind::XeonE5, XeonProfile::CORES)
    }

    /// BlueField's Lynx core budget: 7 of the 8 ARM A72 cores (§6.1).
    pub fn bluefield_arm() -> HostCpu {
        HostCpu::new(CpuKind::ArmA72, BluefieldProfile::LYNX_CORES)
    }

    /// This CPU's kind.
    pub fn kind(&self) -> CpuKind {
        self.inner.borrow().kind
    }

    /// Cores not yet allocated.
    pub fn remaining(&self) -> usize {
        let inner = self.inner.borrow();
        inner.total - inner.taken
    }

    /// The shared last-level cache model.
    pub fn llc(&self) -> LlcModel {
        self.llc.clone()
    }

    /// Allocates `n` cores as a work-sharing pool.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` cores remain.
    pub fn take_pool(&self, n: usize) -> MultiServer {
        let mut inner = self.inner.borrow_mut();
        assert!(
            inner.taken + n <= inner.total,
            "CPU over-allocated: {} of {} cores taken, {n} more requested",
            inner.taken,
            inner.total
        );
        inner.taken += n;
        MultiServer::new(n, inner.kind.speed())
    }

    /// Allocates a single dedicated core.
    ///
    /// # Panics
    ///
    /// Panics if no cores remain.
    pub fn take_core(&self) -> Server {
        let mut inner = self.inner.borrow_mut();
        assert!(
            inner.taken < inner.total,
            "CPU over-allocated: all {} cores taken",
            inner.total
        );
        inner.taken += 1;
        Server::new(inner.kind.speed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynx_sim::{Sim, Time};
    use std::cell::Cell;
    use std::time::Duration;

    #[test]
    fn arm_cores_are_slower() {
        let mut sim = Sim::new(0);
        let arm = HostCpu::bluefield_arm().take_core();
        let done = Rc::new(Cell::new(Time::ZERO));
        let d = Rc::clone(&done);
        arm.submit(&mut sim, Duration::from_micros(15), move |sim| {
            d.set(sim.now())
        });
        sim.run();
        // 15us of Xeon-equivalent work at 0.15 speed = 100us.
        assert_eq!(done.get(), Time::from_micros(100));
    }

    #[test]
    fn allocation_budget_enforced() {
        let cpu = HostCpu::xeon_e5();
        let _a = cpu.take_pool(5);
        let _b = cpu.take_core();
        assert_eq!(cpu.remaining(), 0);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cpu.take_core())).is_err()
        );
    }

    #[test]
    fn bluefield_has_seven_lynx_cores() {
        let bf = HostCpu::bluefield_arm();
        let pool = bf.take_pool(7);
        assert_eq!(pool.lanes(), 7);
        assert_eq!(bf.remaining(), 0);
    }

    #[test]
    fn platform_mapping() {
        assert_eq!(CpuKind::XeonE5.platform(), Platform::Xeon);
        assert_eq!(CpuKind::ArmA72.platform(), Platform::ArmA72);
        assert_eq!(CpuKind::E3.platform(), Platform::Xeon);
    }

    #[test]
    fn llc_is_shared_across_clones() {
        let cpu = HostCpu::xeon_e5();
        cpu.llc().set_neighbor_active(true);
        assert!(cpu.clone().llc().neighbor_active());
    }
}
