//! Calibration constants for every device model.
//!
//! Each constant cites the paper measurement it reproduces. Benches assert
//! *shape* properties (who wins, by what factor, where crossovers fall), so
//! these constants are the single point of truth tying the simulation to
//! the paper's testbed.

use std::time::Duration;

const fn us(v: u64) -> Duration {
    Duration::from_micros(v)
}

// ---------------------------------------------------------------------------
// GPU (NVIDIA K40m / K80)
// ---------------------------------------------------------------------------

/// Maximum concurrently resident threadblocks on a K40m — the paper runs
/// "a persistent GPU kernel with up to 240 threadblocks (maximum number of
/// concurrently executing threadblocks on NVIDIA K40m)" (§6.2).
pub const K40M_MAX_THREADBLOCKS: usize = 240;

/// K80 relative kernel speed: the paper's footnote 2 reports a K80 reaching
/// 3 300 req/s on LeNet vs 3 500 req/s for the K40m.
pub const K80_RELATIVE_SPEED: f64 = 3_300.0 / 3_500.0;

/// Host-centric per-request *latency* overhead: §3.2 measures a 130 µs
/// end-to-end pipeline for a 100 µs kernel — 30 µs of pure GPU management
/// (two copies + launch + sync).
pub const HOSTCENTRIC_LATENCY_OVERHEAD: Duration = us(30);

/// Host-centric per-request *driver occupancy*: time the (single-threaded,
/// lock-protected) driver path is held per request: two `cudaMemcpyAsync`
/// issues, a kernel launch, and completion polling. Calibrated so the
/// host-centric echo server saturates near 22 Kreq/s, which reproduces the
/// 2× (1 mqueue) to 15.3× (240 mqueues) Lynx speedups of Figure 6.
pub const DRIVER_OCCUPANCY_PER_REQUEST: Duration = us(45);

/// Gap between dependent kernel launches on the host-centric path
/// (launch plus sync per layer). Eight LeNet layers at ~9 µs each explain
/// the paper's 2.8 Kreq/s host-centric LeNet vs the 3.6 Kreq/s
/// theoretical maximum.
pub const KERNEL_LAUNCH_GAP: Duration = us(9);

/// Overhead of spawning one child kernel with CUDA dynamic parallelism
/// from a persistent kernel (the Lynx LeNet implementation, §6.3); an
/// order of magnitude cheaper than a host launch.
pub const DYNAMIC_PARALLELISM_GAP: Duration = Duration::from_nanos(1_000);

/// Single GPU thread copy bandwidth (the microbenchmark echo kernel copies
/// the payload with one thread); bounds Figure 5's speedups at large
/// payloads.
pub const GPU_THREAD_COPY_BPS: f64 = 0.25e9;

/// Latency for a polling threadblock to notice a doorbell update in GPU
/// local memory (poll-loop iteration + memory access).
pub const GPU_POLL_DETECT: Duration = Duration::from_nanos(500);

/// Extra per-message cost of the RDMA-read write barrier consistency
/// workaround (§5.1): "these operations incur extra latency of 5 µs to
/// each message".
pub const WRITE_BARRIER_PENALTY: Duration = us(5);

/// Provisioning delay when the elastic control plane activates a parked
/// remote-GPU worker: the driver-managed persistent-kernel spin-up (copy
/// launch parameters + kernel launch + first doorbell poll). Matches the
/// §3.2 measurement of 30 µs for the driver-mediated launch+sync path —
/// paid once per scale-out decision, not per request, which is exactly
/// why Lynx keeps workers persistent (§4.3).
pub const GPU_WORKER_PROVISION: Duration = us(30);

// ---------------------------------------------------------------------------
// CPUs
// ---------------------------------------------------------------------------

/// Xeon E5-2620 v2 cores available on each server of the testbed.
pub const XEON_CORES: usize = 6;

/// BlueField ARM cores used for Lynx: "We use 7 ARM cores (out of 8)"
/// (§6.1).
pub const BLUEFIELD_LYNX_CORES: usize = 7;

/// Relative speed of an 800 MHz ARM A72 vs a Xeon core for general
/// application work. Derived from the memcached comparison of Figure 9:
/// 400 Ktps across seven ARM cores (≈17.5 µs/op incl. the ARM UDP stack)
/// vs 250 Ktps on one Xeon core (3.6 µs/op) — memcached's pointer-chasing
/// and locking hit the small-cache 800 MHz A72 hard.
pub const ARM_RELATIVE_SPEED: f64 = 0.15;

// ---------------------------------------------------------------------------
// Lynx server-logic costs (charged on SmartNIC / host cores)
// ---------------------------------------------------------------------------

/// Message Dispatcher work per request on a Xeon core (parse, pick mqueue,
/// build RDMA WQEs). Together with the VMA UDP profile this puts a single
/// Xeon core's full Lynx pipeline at ≈240–330 Kreq/s depending on mqueue
/// count — ≈70 LeNet GPUs in Figure 8c (paper: 74).
pub const DISPATCH_COST_XEON: Duration = Duration::from_nanos(700);

/// Message Forwarder work per response on a Xeon core.
pub const FORWARD_COST_XEON: Duration = Duration::from_nanos(500);

/// Message Dispatcher work per request on a BlueField ARM core.
/// Calibrated (with the ARM VMA profile) so the 7-core pipeline sustains
/// ≈350 Kreq/s with ~100 mqueues (102 LeNet GPUs in Figure 8c) and the
/// §6.2 breakdown's 14 µs from UDP-done to response-ready holds.
pub const DISPATCH_COST_ARM: Duration = Duration::from_nanos(5_500);

/// Message Forwarder work per response on a BlueField ARM core.
pub const FORWARD_COST_ARM: Duration = Duration::from_nanos(3_000);

/// Round-robin scan cost per mqueue per message on a Xeon core. Makes 240
/// mqueues measurably more expensive than 1 (Figures 6/7: "a single host
/// core is not enough to handle 240 mqueues even for 1.6 ms requests").
pub const MQ_SCAN_COST_XEON: Duration = Duration::from_nanos(10);

/// Round-robin scan cost per mqueue per message on an ARM core.
pub const MQ_SCAN_COST_ARM: Duration = Duration::from_nanos(12);

/// Marginal Message Dispatcher work for each *additional* request in a
/// batched drain on a Xeon core. The first request of a batch pays the
/// full [`DISPATCH_COST_XEON`] (stack invocation, WQE setup, doorbell);
/// subsequent requests reuse the hot icache/stack state and append to the
/// same WQE chain, leaving only parse + slot bookkeeping.
pub const DISPATCH_MARGINAL_XEON: Duration = Duration::from_nanos(180);

/// Marginal Message Forwarder work per additional response in a batched
/// collection on a Xeon core.
pub const FORWARD_MARGINAL_XEON: Duration = Duration::from_nanos(125);

/// Marginal Message Dispatcher work per additional request in a batched
/// drain on a BlueField ARM core. The ~75% amortization reflects that the
/// bulk of [`DISPATCH_COST_ARM`] is per-invocation overhead (VMA poll,
/// syscall-like entry, verb doorbell) that one batched drain pays once —
/// the same observation that makes doorbell batching worthwhile in
/// RecoNIC-style RDMA offload engines.
pub const DISPATCH_MARGINAL_ARM: Duration = Duration::from_nanos(1_400);

/// Marginal Message Forwarder work per additional response in a batched
/// collection on a BlueField ARM core.
pub const FORWARD_MARGINAL_ARM: Duration = Duration::from_nanos(750);

/// Time to poll one mqueue's TX doorbell in the forwarder's round-robin
/// cycle. This is RDMA-issue bound, hence platform-independent; with many
/// mqueues the resulting detection delay dominates response latency on
/// *both* platforms, which is why Figure 7's BlueField/Xeon latency gap
/// shrinks to "within 10%" at 120–240 mqueues for every request size.
pub const MQ_POLL_RTT_PER_QUEUE: Duration = Duration::from_nanos(1_000);

// ---------------------------------------------------------------------------
// Innova FPGA (bump-in-the-wire)
// ---------------------------------------------------------------------------

/// FPGA pipeline initiation interval: one 64 B packet accepted every 135 ns
/// reproduces the measured 7.4 M pkt/s receive throughput (§6.2).
pub const FPGA_INITIATION_INTERVAL: Duration = Duration::from_nanos(135);

/// Depth of the FPGA processing pipeline (ingress to mqueue write).
pub const FPGA_PIPELINE_LATENCY: Duration = us(2);

/// The NICA-based prototype needs a host CPU helper thread to refill the
/// UC QP receive ring (§5.2); cost per message on a Xeon core.
pub const FPGA_HELPER_COST: Duration = Duration::from_nanos(800);

// ---------------------------------------------------------------------------
// Intel VCA + SGX
// ---------------------------------------------------------------------------

/// SGX enclave transition (ecall or ocall) on the VCA's E3 processors.
pub const SGX_TRANSITION: Duration = us(8);

/// Per-message forwarding cost of the host-based network bridge, "the
/// Intel preferred way to connect the VCA to the network" (§6.2).
pub const VCA_BRIDGE_FORWARD: Duration = us(45);

/// One-way latency of IP-over-PCIe tunneling between host and a VCA node.
pub const VCA_IP_OVER_PCIE: Duration = us(45);

/// VCA node kernel network stack receive cost per message.
pub const VCA_KERNEL_RX: Duration = us(18);

/// VCA node kernel network stack send cost per message.
pub const VCA_KERNEL_TX: Duration = us(15);

/// Latency for enclave code to poll an mqueue residing in mapped host
/// memory over PCIe (the paper's workaround: RDMA into VCA memory failed,
/// so mqueues live in host memory mapped into the VCA — "a sub-optimal
/// configuration", §5.4). Uncached PCIe-mapped reads from inside the
/// enclave are slow; calibrated against the 56 µs p90 of §6.2.
pub const VCA_MAPPED_POLL: Duration = us(12);

/// Mapped PCIe read/write of a small payload from the VCA node.
pub const VCA_MAPPED_ACCESS: Duration = us(8);

// ---------------------------------------------------------------------------
// Noisy neighbor (LLC interference, §3.2)
// ---------------------------------------------------------------------------

/// Probability that a request of the victim server hits a long LLC-refill
/// stall while the neighbor runs.
pub const LLC_STALL_PROB: f64 = 0.04;

/// Mean of the (exponential) stall added on such hits. Jointly calibrated
/// with [`LLC_STALL_PROB`] — including the queueing amplification behind
/// the server's core — to inflate the vector-scale server's p99 from
/// 0.13 ms to ≈1.7 ms (13×, §3.2).
pub const LLC_STALL_MEAN: Duration = us(550);

/// Uniform service-time inflation of the victim while the neighbor runs.
pub const LLC_VICTIM_INFLATION: f64 = 1.35;

/// Slowdown of the neighbor (matrix product) while the victim server runs:
/// "21 % slowdown for the matrix product" (§3.2).
pub const LLC_NEIGHBOR_SLOWDOWN: f64 = 1.21;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_are_sane() {
        assert!(K80_RELATIVE_SPEED < 1.0);
        assert!(ARM_RELATIVE_SPEED < 1.0);
        assert!(DISPATCH_COST_ARM > DISPATCH_COST_XEON);
        assert!(FPGA_INITIATION_INTERVAL < Duration::from_micros(1));
        assert!(LLC_NEIGHBOR_SLOWDOWN > 1.0);
    }

    #[test]
    fn fpga_interval_reproduces_7_4_mpps() {
        let pps = 1.0 / FPGA_INITIATION_INTERVAL.as_secs_f64();
        assert!((7.0e6..8.0e6).contains(&pps), "pps={pps}");
    }

    #[test]
    fn hostcentric_overhead_matches_section_3_2() {
        // 100us kernel + overhead = 130us end-to-end.
        let e2e = Duration::from_micros(100) + HOSTCENTRIC_LATENCY_OVERHEAD;
        assert_eq!(e2e, Duration::from_micros(130));
    }
}
