//! GPU model: persistent-kernel threadblocks and the host-centric launch
//! path.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use lynx_fabric::{MemRegion, NodeId, PcieFabric};
use lynx_sim::{MultiServer, Server, Sim, SiteCounter, SiteGauge};

use crate::profile::GpuProfile;

/// Static characteristics of a GPU model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Maximum concurrently resident threadblocks.
    pub max_threadblocks: usize,
    /// Kernel speed relative to the reference K40m.
    pub speed: f64,
    /// Device memory size in bytes.
    pub mem_bytes: usize,
}

impl GpuSpec {
    /// NVIDIA Tesla K40m — the paper's primary microbenchmark GPU.
    pub fn k40m() -> GpuSpec {
        GpuSpec::from_profile(GpuProfile::k40m())
    }

    /// NVIDIA Tesla K80 (one of the two dies) — used in the scale-out
    /// experiments; "slower than K40m and achieves 3 300 req/sec at most"
    /// (§6.3, footnote 2).
    pub fn k80() -> GpuSpec {
        GpuSpec::from_profile(GpuProfile::k80())
    }

    /// Builds a spec from an analytic [`GpuProfile`].
    pub fn from_profile(p: GpuProfile) -> GpuSpec {
        GpuSpec {
            name: p.name,
            max_threadblocks: p.max_threadblocks,
            speed: p.relative_speed,
            mem_bytes: 64 << 20,
        }
    }
}

struct Inner {
    spec: GpuSpec,
    mem: MemRegion,
    next_alloc: usize,
    blocks: usize,
    driver: Server,
    exec: MultiServer,
    requests_site: SiteCounter,
    driver_util_site: SiteGauge,
    exec_util_site: SiteGauge,
}

/// A simulated GPU attached to a PCIe fabric node.
///
/// Two execution paths mirror the paper's two server designs:
///
/// * **Persistent kernels** ([`Gpu::spawn_block`]) — threadblocks that stay
///   resident, poll mqueues in device memory, and process requests without
///   any host involvement (the Lynx path).
/// * **Host-centric launches** ([`Gpu::hostcentric_request`]) — per-request
///   `cudaMemcpy`/launch/sync through the driver, whose serialization and
///   fixed overheads produce the baseline's throughput ceiling (§3.2).
///
/// Device memory is a real byte array ([`Gpu::mem`]) exposed on the fabric
/// (BAR), so the SmartNIC's RDMA engine can read and write mqueues in it.
#[derive(Clone)]
pub struct Gpu {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Gpu")
            .field("spec", &inner.spec.name)
            .field("node", &inner.mem.node())
            .field("blocks", &inner.blocks)
            .field("allocated", &inner.next_alloc)
            .finish()
    }
}

impl Gpu {
    /// Creates a GPU on fabric node `node` with a single host-centric
    /// execution lane (whole-GPU kernels, e.g. LeNet).
    pub fn new(fabric: &PcieFabric, node: NodeId, spec: GpuSpec) -> Gpu {
        Gpu::with_exec_lanes(fabric, node, spec, 1)
    }

    /// Creates a GPU with `lanes` concurrent host-centric kernel execution
    /// lanes (small kernels from independent CUDA streams can overlap; the
    /// microbenchmarks use one-threadblock kernels).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0` or exceeds the spec's threadblock limit.
    pub fn with_exec_lanes(fabric: &PcieFabric, node: NodeId, spec: GpuSpec, lanes: usize) -> Gpu {
        assert!(
            lanes > 0 && lanes <= spec.max_threadblocks,
            "invalid exec lane count {lanes}"
        );
        assert!(
            (node.0 as usize) < fabric.node_count(),
            "GPU node must belong to the fabric"
        );
        let mem = MemRegion::new(node, spec.mem_bytes, spec.name);
        Gpu {
            inner: Rc::new(RefCell::new(Inner {
                spec,
                mem,
                next_alloc: 0,
                blocks: 0,
                driver: Server::new(1.0),
                exec: MultiServer::new(lanes, spec.speed),
                requests_site: SiteCounter::new(),
                driver_util_site: SiteGauge::new(),
                exec_util_site: SiteGauge::new(),
            })),
        }
    }

    /// This GPU's specification.
    pub fn spec(&self) -> GpuSpec {
        self.inner.borrow().spec
    }

    /// The BAR-exposed device memory.
    pub fn mem(&self) -> MemRegion {
        self.inner.borrow().mem.clone()
    }

    /// The PCIe fabric node the GPU occupies.
    pub fn node(&self) -> NodeId {
        self.inner.borrow().mem.node()
    }

    /// Bump-allocates `bytes` of device memory (64-byte aligned), returning
    /// the offset. Used by the host control plane to place mqueues.
    ///
    /// # Panics
    ///
    /// Panics when device memory is exhausted.
    pub fn alloc(&self, bytes: usize) -> usize {
        let mut inner = self.inner.borrow_mut();
        let off = (inner.next_alloc + 63) & !63;
        assert!(
            off + bytes <= inner.spec.mem_bytes,
            "GPU {} out of memory ({} requested at {})",
            inner.spec.name,
            bytes,
            off
        );
        inner.next_alloc = off + bytes;
        off
    }

    /// Spawns a persistent-kernel threadblock.
    ///
    /// # Panics
    ///
    /// Panics when all resident threadblock slots are taken.
    pub fn spawn_block(&self) -> Threadblock {
        let mut inner = self.inner.borrow_mut();
        assert!(
            inner.blocks < inner.spec.max_threadblocks,
            "GPU {}: threadblock limit {} reached",
            inner.spec.name,
            inner.spec.max_threadblocks
        );
        inner.blocks += 1;
        Threadblock {
            exec: Server::new(inner.spec.speed),
        }
    }

    /// Number of persistent threadblocks spawned.
    pub fn blocks_spawned(&self) -> usize {
        self.inner.borrow().blocks
    }

    /// Executes one request on the host-centric path: H2D copy, one or more
    /// dependent kernel launches, sync, D2H copy.
    ///
    /// Models both effects of §3.2: the per-request *latency* overhead
    /// ([`GpuProfile::hostcentric_overhead`], 30 µs) and the serialized
    /// *driver occupancy* ([`GpuProfile::driver_occupancy`]) that caps
    /// throughput regardless of stream concurrency. `done` fires when
    /// the response bytes are back in host memory.
    pub fn hostcentric_request(
        &self,
        sim: &mut Sim,
        kernel_time: Duration,
        launches: u32,
        done: impl FnOnce(&mut Sim) + 'static,
    ) {
        let profile = GpuProfile::reference();
        let gaps = profile.launch_gap * launches.saturating_sub(1);
        let (driver, exec) = {
            let inner = self.inner.borrow();
            if let Some(t) = sim.telemetry() {
                inner
                    .requests_site
                    .add(t, "device.gpu.hostcentric_requests", 1);
            }
            (inner.driver.clone(), inner.exec.clone())
        };
        // The driver lock is held for the occupancy window (copy issues,
        // launches, completion polling); it overlaps kernel execution, so
        // completion is the *join* of the two paths.
        let pending = Rc::new(Cell::new(2u8));
        let done = Rc::new(RefCell::new(Some(done)));
        let join = move |sim: &mut Sim| {
            if pending.get() == 1 {
                if let Some(f) = done.borrow_mut().take() {
                    f(sim);
                }
            } else {
                pending.set(pending.get() - 1);
            }
        };
        let join2 = join.clone();
        driver.submit(sim, profile.driver_occupancy + gaps, move |sim| join(sim));
        let half = profile.hostcentric_overhead / 2;
        sim.schedule_in(half, move |sim| {
            exec.submit(sim, kernel_time + gaps, move |sim| {
                sim.schedule_in(half, move |sim| join2(sim));
            });
        });
    }

    /// Publishes this GPU's driver and execution-lane utilization (fraction
    /// of sim time spent busy since time zero) as telemetry gauges
    /// `device.gpu.<name>@<node>.{driver,exec}_util`.
    ///
    /// No-op when telemetry is disabled. Call once at the end of a run —
    /// gauges overwrite, so only the last call is reported.
    pub fn publish_utilization(&self, sim: &Sim) {
        let Some(t) = sim.telemetry() else { return };
        let inner = self.inner.borrow();
        let elapsed = sim.now().saturating_since(lynx_sim::Time::ZERO);
        let spec = inner.spec.name;
        let node = inner.mem.node();
        inner.driver_util_site.set_with(
            t,
            || format!("device.gpu.{spec}@{node}.driver_util"),
            inner.driver.utilization(elapsed),
        );
        inner.exec_util_site.set_with(
            t,
            || format!("device.gpu.{spec}@{node}.exec_util"),
            inner.exec.utilization(elapsed),
        );
    }
}

/// A persistent-kernel threadblock: the accelerator-side execution context
/// of one mqueue.
///
/// Work submitted to a threadblock serializes (a block processes one
/// request at a time); the GPU's relative speed scales service times.
#[derive(Clone)]
pub struct Threadblock {
    exec: Server,
}

impl fmt::Debug for Threadblock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Threadblock")
            .field("requests", &self.exec.jobs())
            .finish()
    }
}

impl Threadblock {
    /// Runs `work` of reference-GPU kernel time on this block; `done` fires
    /// when it completes. Returns immediately.
    pub fn run(&self, sim: &mut Sim, work: Duration, done: impl FnOnce(&mut Sim) + 'static) {
        self.exec.submit(sim, work, done);
    }

    /// Requests processed so far.
    pub fn requests(&self) -> u64 {
        self.exec.jobs()
    }

    /// Accumulated busy time.
    pub fn busy_time(&self) -> Duration {
        self.exec.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynx_sim::Time;

    fn gpu() -> (Sim, Gpu) {
        let sim = Sim::new(0);
        let fabric = PcieFabric::new();
        let host = fabric.add_node("host");
        let g = fabric.add_node("gpu");
        fabric.link(host, g, lynx_fabric::PcieLink::gen3_x16());
        (sim, Gpu::new(&fabric, g, GpuSpec::k40m()))
    }

    #[test]
    fn hostcentric_latency_matches_section_3_2() {
        // 100us kernel -> 130us end-to-end (30us management overhead).
        let (mut sim, gpu) = gpu();
        let done = Rc::new(Cell::new(Time::ZERO));
        let d = Rc::clone(&done);
        gpu.hostcentric_request(&mut sim, Duration::from_micros(100), 1, move |sim| {
            d.set(sim.now());
        });
        sim.run();
        assert_eq!(done.get(), Time::from_micros(130));
    }

    #[test]
    fn driver_occupancy_caps_throughput() {
        let (mut sim, gpu) = gpu();
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..100 {
            let c = Rc::clone(&count);
            gpu.hostcentric_request(&mut sim, Duration::from_micros(1), 1, move |_| {
                c.set(c.get() + 1);
            });
        }
        sim.run();
        assert_eq!(count.get(), 100);
        // 100 requests serialized at 45us each on the driver.
        assert!(sim.now() >= Time::from_micros(4_500));
    }

    #[test]
    fn multi_launch_kernels_pay_per_launch_gap() {
        let (mut sim, gpu) = gpu();
        let done = Rc::new(Cell::new(Time::ZERO));
        let d = Rc::clone(&done);
        // 8 launches (LeNet layers): 7 gaps of 9us each.
        gpu.hostcentric_request(&mut sim, Duration::from_micros(278), 8, move |sim| {
            d.set(sim.now());
        });
        sim.run();
        assert_eq!(done.get(), Time::from_micros(278 + 63 + 30));
    }

    #[test]
    fn threadblocks_serialize_their_work() {
        let (mut sim, gpu) = gpu();
        let tb = gpu.spawn_block();
        let last = Rc::new(Cell::new(Time::ZERO));
        for _ in 0..3 {
            let l = Rc::clone(&last);
            tb.run(&mut sim, Duration::from_micros(10), move |sim| {
                l.set(sim.now())
            });
        }
        sim.run();
        assert_eq!(last.get(), Time::from_micros(30));
        assert_eq!(tb.requests(), 3);
    }

    #[test]
    fn k80_is_slower_than_k40m() {
        let mut sim = Sim::new(0);
        let fabric = PcieFabric::new();
        let n = fabric.add_node("gpu");
        let k80 = Gpu::new(&fabric, n, GpuSpec::k80());
        let tb = k80.spawn_block();
        let done = Rc::new(Cell::new(Time::ZERO));
        let d = Rc::clone(&done);
        tb.run(&mut sim, Duration::from_micros(100), move |sim| {
            d.set(sim.now())
        });
        sim.run();
        assert!(done.get() > Time::from_micros(100));
    }

    #[test]
    fn block_limit_enforced() {
        let (_sim, gpu) = gpu();
        for _ in 0..240 {
            let _ = gpu.spawn_block();
        }
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| gpu.spawn_block())).is_err()
        );
    }

    #[test]
    fn alloc_is_aligned_and_bounded() {
        let (_sim, gpu) = gpu();
        let a = gpu.alloc(10);
        let b = gpu.alloc(10);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 10);
    }

    #[test]
    fn memory_is_shared_with_fabric_peers() {
        let (_sim, gpu) = gpu();
        let m1 = gpu.mem();
        let m2 = gpu.mem();
        m1.write(0, &[42]);
        assert_eq!(m2.read(0, 1), vec![42]);
    }
}
