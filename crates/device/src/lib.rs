//! # lynx-device — hardware device models
//!
//! Simulation models of every hardware component in the Lynx (ASPLOS '20)
//! testbed, calibrated against the timing constants the paper reports:
//!
//! * [`Gpu`] — NVIDIA K40m/K80-class GPU with persistent-kernel
//!   threadblocks ([`Threadblock`]), BAR-exposed device memory, and the
//!   host-centric launch path whose driver serialization and per-launch
//!   overheads produce the baseline's behaviour (§3.2).
//! * [`HostCpu`] + [`LlcModel`] — the Xeon E5-2620 v2 host and the
//!   last-level-cache interference that creates the noisy-neighbor effect.
//! * [`FpgaNic`] — the Innova Flex bump-in-the-wire FPGA receive pipeline
//!   (7.4 M pkt/s in §6.2).
//! * [`Vca`] — the Intel Visual Compute Accelerator: three E3 nodes with
//!   SGX enclave transition costs and the host-bridge network path used by
//!   its baseline.
//! * [`RequestProcessor`] — the interface application kernels implement so
//!   they can run inside any of these accelerators (functional result +
//!   calibrated service time).
//!
//! Every per-op cost is exposed through the typed [`profile`] module — a
//! [`CostProfile`] implementation per platform ([`XeonProfile`],
//! [`BluefieldProfile`], [`FpgaProfile`], [`VcaProfile`]) plus the
//! accelerator-side [`GpuProfile`] — backed by the calibration constants
//! in `calib`, each annotated with the paper measurement it reproduces.
//! The raw `calib` consts are `#[doc(hidden)]` as of 0.5.0; consume the
//! profiles instead (see `CHANGELOG.md` for the migration map).

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

#[doc(hidden)]
pub mod calib;
mod cpu;
mod fpga;
mod gpu;
mod llc;
mod processor;
pub mod profile;
mod vca;

pub use cpu::{CpuKind, HostCpu};
pub use fpga::FpgaNic;
pub use gpu::{Gpu, GpuSpec, Threadblock};
pub use llc::LlcModel;
pub use processor::{DelayProcessor, EchoProcessor, RequestProcessor};
pub use profile::{
    profile_for, AppProfile, BluefieldProfile, CostProfile, FpgaProfile, GpuProfile,
    InterferenceProfile, VcaProfile, XeonProfile,
};
pub use vca::{Vca, VcaNode};
