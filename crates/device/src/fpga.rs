//! The Innova Flex bump-in-the-wire FPGA NIC (§5.2, §6.2).

use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use lynx_sim::{Server, Sim, SiteCounter};

use crate::profile::FpgaProfile;

/// The FPGA packet-processing pipeline of the Mellanox Innova Flex SNIC.
///
/// Every packet passing through the NIC is processed by the FPGA logic
/// in front of the ConnectX-4 ASIC. The Lynx prototype implements the
/// network server as a NICA accelerated-function-unit (AFU): an on-FPGA UDP
/// stack, metadata append, and a custom-ring (mqueue) write. A hardware
/// pipeline accepts one packet per *initiation interval* regardless of
/// pipeline depth, which is what gives the FPGA its 15× advantage over
/// BlueField's ARM cores (7.4 M vs 0.5 M pkt/s).
///
/// The paper's prototype is receive-path only and needs a host CPU helper
/// thread to refill the UC QP ring (§5.2) — [`FpgaNic::ingest`] exposes
/// the helper cost so experiments can charge it to a host core.
#[derive(Clone)]
pub struct FpgaNic {
    pipeline: Server,
    ii: Duration,
    depth: Duration,
    packets_site: Rc<SiteCounter>,
}

impl fmt::Debug for FpgaNic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FpgaNic")
            .field("initiation_interval", &self.ii)
            .field("pipeline_latency", &self.depth)
            .field("packets", &self.pipeline.jobs())
            .finish()
    }
}

impl Default for FpgaNic {
    fn default() -> Self {
        Self::new()
    }
}

impl FpgaNic {
    /// Creates the pipeline with the calibrated Innova parameters.
    pub fn new() -> FpgaNic {
        FpgaNic {
            pipeline: Server::new(1.0),
            ii: FpgaProfile::INITIATION_INTERVAL,
            depth: FpgaProfile::PIPELINE_LATENCY,
            packets_site: Rc::new(SiteCounter::new()),
        }
    }

    /// Ingests one packet: it occupies the pipeline for one initiation
    /// interval and emerges (written to the target mqueue) after the
    /// pipeline depth. `done` fires at emergence.
    pub fn ingest(&self, sim: &mut Sim, done: impl FnOnce(&mut Sim) + 'static) {
        if let Some(t) = sim.telemetry() {
            self.packets_site.add(t, "device.fpga.packets", 1);
        }
        let depth = self.depth;
        self.pipeline.submit(sim, self.ii, move |sim| {
            sim.schedule_in(depth, done);
        });
    }

    /// Host-core cost per message of the UC-ring refill helper thread.
    pub fn helper_cost(&self) -> Duration {
        FpgaProfile::HELPER_COST
    }

    /// Packets ingested so far.
    pub fn packets(&self) -> u64 {
        self.pipeline.jobs()
    }

    /// Theoretical packet rate ceiling (1 / initiation interval).
    pub fn peak_pps(&self) -> f64 {
        1.0 / self.ii.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynx_sim::Time;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn sustains_7_4_mpps() {
        let mut sim = Sim::new(0);
        let fpga = FpgaNic::new();
        let n = 100_000u32;
        let count = Rc::new(Cell::new(0u32));
        for _ in 0..n {
            let c = Rc::clone(&count);
            fpga.ingest(&mut sim, move |_| c.set(c.get() + 1));
        }
        sim.run();
        assert_eq!(count.get(), n);
        let pps = n as f64 / sim.now().as_secs_f64();
        assert!((7.0e6..7.8e6).contains(&pps), "pps={pps}");
    }

    #[test]
    fn pipeline_latency_applies_per_packet() {
        let mut sim = Sim::new(0);
        let fpga = FpgaNic::new();
        let t = Rc::new(Cell::new(Time::ZERO));
        let t2 = Rc::clone(&t);
        fpga.ingest(&mut sim, move |sim| t2.set(sim.now()));
        sim.run();
        assert_eq!(t.get(), Time::from_nanos(135) + Duration::from_micros(2));
    }

    #[test]
    fn peak_rate_reported() {
        let fpga = FpgaNic::new();
        assert!((fpga.peak_pps() - 7.4e6).abs() < 0.1e6);
    }
}
