//! Last-level-cache interference (the noisy-neighbor effect, §3.2).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use lynx_sim::{rng, Sim};

use crate::profile::InterferenceProfile;

#[derive(Debug)]
struct Inner {
    neighbor_active: bool,
    victim_active: bool,
    stall_prob: f64,
    stall_mean: Duration,
    victim_inflation: f64,
    neighbor_slowdown: f64,
}

/// Shared last-level cache of a host CPU.
///
/// The paper's §3.2 motivation experiment co-runs a GPU-accelerated network
/// server with a cache-filling matrix product on different cores of the
/// same CPU and observes a 13× inflation of the server's 99th-percentile
/// latency (0.13 ms → 1.7 ms) plus a 21 % slowdown of the matrix product.
/// Moving the server's data/control plane to the SmartNIC (Lynx) removes
/// the interference entirely.
///
/// The model inflates the *victim's* per-request service time by a uniform
/// factor while the neighbor runs, and adds a rare exponential stall that
/// produces the heavy tail; the *neighbor's* work is slowed by a constant
/// factor while the victim runs.
///
/// # Example
///
/// ```
/// use lynx_device::LlcModel;
/// use lynx_sim::Sim;
/// use std::time::Duration;
///
/// let mut sim = Sim::new(7);
/// let llc = LlcModel::new();
/// let quiet = llc.victim_service_time(&mut sim, Duration::from_micros(100));
/// assert_eq!(quiet, Duration::from_micros(100));
/// llc.set_neighbor_active(true);
/// let noisy = llc.victim_service_time(&mut sim, Duration::from_micros(100));
/// assert!(noisy > quiet);
/// ```
#[derive(Clone)]
pub struct LlcModel {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for LlcModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("LlcModel")
            .field("neighbor_active", &inner.neighbor_active)
            .field("victim_active", &inner.victim_active)
            .finish()
    }
}

impl Default for LlcModel {
    fn default() -> Self {
        Self::new()
    }
}

impl LlcModel {
    /// Creates the model with the calibrated §3.2 parameters.
    pub fn new() -> LlcModel {
        let p = InterferenceProfile::xeon_llc();
        LlcModel {
            inner: Rc::new(RefCell::new(Inner {
                neighbor_active: false,
                victim_active: false,
                stall_prob: p.stall_prob,
                stall_mean: p.stall_mean,
                victim_inflation: p.victim_inflation,
                neighbor_slowdown: p.neighbor_slowdown,
            })),
        }
    }

    /// Marks the cache-filling neighbor (matrix product) running or not.
    pub fn set_neighbor_active(&self, active: bool) {
        self.inner.borrow_mut().neighbor_active = active;
    }

    /// Marks the victim server running or not.
    pub fn set_victim_active(&self, active: bool) {
        self.inner.borrow_mut().victim_active = active;
    }

    /// Whether the neighbor is currently running.
    pub fn neighbor_active(&self) -> bool {
        self.inner.borrow().neighbor_active
    }

    /// Effective service time of one victim request given the current
    /// interference state (draws from the simulator's random stream).
    pub fn victim_service_time(&self, sim: &mut Sim, nominal: Duration) -> Duration {
        let (active, prob, mean, inflation) = {
            let inner = self.inner.borrow();
            (
                inner.neighbor_active,
                inner.stall_prob,
                inner.stall_mean,
                inner.victim_inflation,
            )
        };
        if !active {
            return nominal;
        }
        use rand::Rng;
        let mut t = nominal.mul_f64(inflation);
        if sim.rng().gen_bool(prob) {
            t += rng::exponential(sim.rng(), mean);
        }
        t
    }

    /// Slowdown factor applied to the neighbor's compute while the victim
    /// server runs on the same CPU ("21 % slowdown for the matrix product").
    pub fn neighbor_factor(&self) -> f64 {
        let inner = self.inner.borrow();
        if inner.victim_active {
            inner.neighbor_slowdown
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynx_sim::Histogram;

    #[test]
    fn idle_neighbor_means_no_inflation() {
        let mut sim = Sim::new(1);
        let llc = LlcModel::new();
        let d = Duration::from_micros(130);
        assert_eq!(llc.victim_service_time(&mut sim, d), d);
    }

    #[test]
    fn tail_reaches_13x_under_interference() {
        let mut sim = Sim::new(42);
        let llc = LlcModel::new();
        llc.set_neighbor_active(true);
        let nominal = Duration::from_micros(130);
        let mut h = Histogram::new();
        for _ in 0..60_000 {
            h.record(llc.victim_service_time(&mut sim, nominal));
        }
        let p99 = h.percentile(99.0);
        let ratio = p99.as_secs_f64() / nominal.as_secs_f64();
        // The paper reports 13x; accept a broad band around it.
        assert!((6.0..25.0).contains(&ratio), "p99 inflation = {ratio:.1}x");
        // Median stays near the uniform inflation factor.
        let p50 = h.percentile(50.0);
        assert!(p50 < nominal.mul_f64(1.6));
    }

    #[test]
    fn neighbor_slows_while_victim_runs() {
        let llc = LlcModel::new();
        assert_eq!(llc.neighbor_factor(), 1.0);
        llc.set_victim_active(true);
        assert!((llc.neighbor_factor() - 1.21).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let sample = |seed| {
            let mut sim = Sim::new(seed);
            let llc = LlcModel::new();
            llc.set_neighbor_active(true);
            (0..100)
                .map(|_| llc.victim_service_time(&mut sim, Duration::from_micros(100)))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(9), sample(9));
    }
}
