//! The interface between accelerators and application kernels.

use std::fmt::Debug;
use std::time::Duration;

use crate::profile::GpuProfile;

/// A request-processing kernel that can run inside a simulated accelerator.
///
/// Implementations provide both the *functional* result (real computed
/// bytes, so end-to-end tests verify payload integrity) and the *timing*
/// (service time on the reference accelerator, scaled by the device's
/// relative speed).
///
/// Simple RPC-style servers (echo, vector-scale, LeNet inference) implement
/// this trait; servers that perform accelerator-side I/O mid-request (the
/// face-verification server talking to memcached) are instead written
/// directly against the accelerator I/O shim in `lynx-core`.
pub trait RequestProcessor: Debug {
    /// Kernel name (diagnostics and reports).
    fn name(&self) -> &str;

    /// Service time of this request on the reference accelerator.
    fn service_time(&self, request: &[u8]) -> Duration;

    /// Computes the response payload.
    fn process(&self, request: &[u8]) -> Vec<u8>;

    /// Number of dependent child-kernel launches the computation needs
    /// (one per fused layer for neural nets). Drives launch-overhead
    /// charges: [`GpuProfile::launch_gap`] each on the host-centric
    /// path, [`GpuProfile::dynamic_parallelism_gap`] each under Lynx.
    fn launches(&self) -> u32 {
        1
    }
}

/// The echo kernel of the paper's microbenchmarks: "1 thread which copies
/// the input to the output" (§6.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct EchoProcessor;

impl RequestProcessor for EchoProcessor {
    fn name(&self) -> &str {
        "echo"
    }

    fn service_time(&self, request: &[u8]) -> Duration {
        // A single GPU thread copies the payload.
        Duration::from_secs_f64(request.len() as f64 / GpuProfile::reference().thread_copy_bps)
    }

    fn process(&self, request: &[u8]) -> Vec<u8> {
        request.to_vec()
    }
}

/// Echo plus a fixed busy-wait, emulating request processing of a given
/// length — the paper's throughput/latency sweeps ("waits for a predefined
/// period emulating request processing", §6.2).
#[derive(Clone, Copy, Debug)]
pub struct DelayProcessor {
    delay: Duration,
}

impl DelayProcessor {
    /// Creates a processor that busy-waits `delay` per request.
    pub fn new(delay: Duration) -> DelayProcessor {
        DelayProcessor { delay }
    }

    /// The configured busy-wait.
    pub fn delay(&self) -> Duration {
        self.delay
    }
}

impl RequestProcessor for DelayProcessor {
    fn name(&self) -> &str {
        "delay-echo"
    }

    fn service_time(&self, request: &[u8]) -> Duration {
        self.delay + EchoProcessor.service_time(request)
    }

    fn process(&self, request: &[u8]) -> Vec<u8> {
        request.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_copies_input() {
        let p = EchoProcessor;
        assert_eq!(p.process(b"abc"), b"abc");
        assert_eq!(p.launches(), 1);
    }

    #[test]
    fn echo_service_time_scales_with_size() {
        let p = EchoProcessor;
        let small = p.service_time(&[0; 4]);
        let large = p.service_time(&[0; 1416]);
        assert!(large > small * 100);
        // 1416 B at 0.25 GB/s is ~5.7 us.
        assert!((large.as_secs_f64() - 1416.0 / 0.25e9).abs() < 1e-12);
    }

    #[test]
    fn delay_processor_adds_fixed_cost() {
        let p = DelayProcessor::new(Duration::from_micros(100));
        let t = p.service_time(&[0; 4]);
        assert!(t >= Duration::from_micros(100));
        assert!(t < Duration::from_micros(101));
        assert_eq!(p.process(&[1, 2]), vec![1, 2]);
    }
}
