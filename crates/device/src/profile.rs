//! Typed per-platform cost profiles — the analytic surface over [`calib`].
//!
//! Earlier releases exposed the paper's calibration data as ~30 flat
//! `pub const`s in [`calib`] and let every consumer pick the right ones by
//! hand. This module replaces that with a typed API in the style of
//! AirIndex's `StorageProfile`: a [`CostProfile`] trait describing the
//! per-message costs of one *platform* running the Lynx server logic,
//! implemented by [`XeonProfile`], [`BluefieldProfile`], [`FpgaProfile`]
//! and [`VcaProfile`], plus plain structs for the accelerator-side numbers
//! ([`GpuProfile`]) and the LLC interference model
//! ([`InterferenceProfile`]).
//!
//! The constants in [`calib`] remain the single point of truth — profiles
//! are zero-sized views over them, so migrating a call site from a raw
//! const to the profile method returns the *exact same* `Duration` and
//! keeps same-seed telemetry byte-identical. The raw consts stay
//! re-exported (`#[doc(hidden)]`) for one release; see `CHANGELOG.md`.
//!
//! Beyond serving the simulation models, the profiles are the input of the
//! deployment auto-tuner (`lynx_workload::tune`): its analytic
//! throughput/latency predictor composes these per-op costs into
//! closed-form per-deployment estimates and searches the configuration
//! space against a target SLO.

use std::fmt;
use std::time::Duration;

use lynx_fabric::xfer::Mechanism;

use crate::{calib, CpuKind, RequestProcessor};

/// Analytic description of an application kernel, as the auto-tuner's
/// predictor sees it: reference-accelerator service time, child-kernel
/// launches, and message sizes.
///
/// Obtain one from a live [`RequestProcessor`] with [`AppProfile::of`], or
/// construct it directly for apps whose kernels are not
/// `RequestProcessor`s (e.g. the face-verification pipeline).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppProfile {
    /// Kernel name (diagnostics and reports).
    pub name: &'static str,
    /// Service time of one request on the reference accelerator (K40m).
    pub kernel: Duration,
    /// Dependent child-kernel launches per request (one per fused layer).
    pub launches: u32,
    /// Request payload bytes on the wire.
    pub request_bytes: usize,
    /// Response payload bytes on the wire.
    pub response_bytes: usize,
}

impl AppProfile {
    /// Profiles a [`RequestProcessor`] by probing it with a representative
    /// zero-filled request of `request_bytes`.
    pub fn of(name: &'static str, proc: &dyn RequestProcessor, request_bytes: usize) -> AppProfile {
        let request = vec![0u8; request_bytes];
        AppProfile {
            name,
            kernel: proc.service_time(&request),
            launches: proc.launches(),
            request_bytes,
            response_bytes: proc.process(&request).len(),
        }
    }

    /// The §6.2 microbenchmark app: echo with an artificial processing
    /// `delay`, `payload` bytes each way.
    pub fn delay_echo(delay: Duration, payload: usize) -> AppProfile {
        let copy =
            Duration::from_secs_f64(payload as f64 / GpuProfile::reference().thread_copy_bps);
        AppProfile {
            name: "delay-echo",
            kernel: delay + copy,
            launches: 1,
            request_bytes: payload,
            response_bytes: payload,
        }
    }
}

/// Per-message cost surface of one platform running the Lynx server logic.
///
/// Implementations are zero-sized views over the calibration constants in
/// [`calib`], so every method returns exactly the `Duration` the raw const
/// held — migrating a call site keeps same-seed telemetry byte-identical.
///
/// Three method families, each with marginal/batched variants:
///
/// * **dispatch/forward** — Message Dispatcher / Message Forwarder CPU
///   work per message ([`dispatch_cost`](CostProfile::dispatch_cost),
///   [`dispatch_marginal`](CostProfile::dispatch_marginal),
///   [`dispatch_batch`](CostProfile::dispatch_batch), and the `forward_*`
///   mirror).
/// * **mqueue scanning** — round-robin scan and TX-doorbell poll costs
///   ([`mq_scan`](CostProfile::mq_scan),
///   [`mq_scan_cycle`](CostProfile::mq_scan_cycle),
///   [`mq_poll_rtt`](CostProfile::mq_poll_rtt)).
/// * **data movement / compute** — RDMA verb and accelerator kernel costs
///   ([`verb_cost`](CostProfile::verb_cost),
///   [`verb_batch`](CostProfile::verb_batch),
///   [`kernel_cost`](CostProfile::kernel_cost)).
///
/// ```
/// use lynx_device::profile::{BluefieldProfile, CostProfile, XeonProfile};
///
/// // ARM dispatch is an order of magnitude pricier than Xeon dispatch —
/// // the reason batching matters on the wimpy-core SmartNIC.
/// assert!(BluefieldProfile.dispatch_cost() > 5 * XeonProfile.dispatch_cost());
/// // A batched drain amortizes: 4 messages cost far less than 4 singles.
/// let b = BluefieldProfile.dispatch_batch(4);
/// assert!(b < BluefieldProfile.dispatch_cost() * 4);
/// ```
pub trait CostProfile: fmt::Debug {
    /// Platform name (diagnostics and reports).
    fn name(&self) -> &'static str;

    /// The CPU kind whose speed scales work charged on this platform.
    fn cpu(&self) -> CpuKind;

    /// Cores available to run the Lynx pipeline on this platform.
    fn pipeline_cores(&self) -> usize;

    /// Message Dispatcher work for a single (or the first batched)
    /// request: parse, pick mqueue, build RDMA WQEs, doorbell.
    fn dispatch_cost(&self) -> Duration;

    /// Marginal dispatcher work per *additional* request in a batched
    /// drain (hot icache, WQE chain append).
    fn dispatch_marginal(&self) -> Duration {
        self.dispatch_cost()
    }

    /// Total dispatcher work for a drain of `batch` requests: the first
    /// pays [`dispatch_cost`](CostProfile::dispatch_cost), each further
    /// one [`dispatch_marginal`](CostProfile::dispatch_marginal).
    fn dispatch_batch(&self, batch: u32) -> Duration {
        if batch == 0 {
            return Duration::ZERO;
        }
        self.dispatch_cost() + self.dispatch_marginal() * (batch - 1)
    }

    /// Message Forwarder work for a single (or the first batched)
    /// response.
    fn forward_cost(&self) -> Duration;

    /// Marginal forwarder work per additional response in a batched
    /// collection.
    fn forward_marginal(&self) -> Duration {
        self.forward_cost()
    }

    /// Total forwarder work for a collection of `batch` responses.
    fn forward_batch(&self, batch: u32) -> Duration {
        if batch == 0 {
            return Duration::ZERO;
        }
        self.forward_cost() + self.forward_marginal() * (batch - 1)
    }

    /// Round-robin scan cost per registered mqueue per message.
    fn mq_scan(&self) -> Duration;

    /// One full scan cycle over `mqueues` registered queues.
    fn mq_scan_cycle(&self, mqueues: usize) -> Duration {
        self.mq_scan() * mqueues as u32
    }

    /// Time to poll one mqueue's TX doorbell in the forwarder's
    /// round-robin cycle. RDMA-issue bound, hence platform-independent
    /// by default; the mean detection delay of a response is half a full
    /// cycle over all queues.
    fn mq_poll_rtt(&self) -> Duration {
        calib::MQ_POLL_RTT_PER_QUEUE
    }

    /// End-to-end latency of one one-sided RDMA verb moving `size`
    /// payload bytes between SNIC and accelerator memory (post + landing
    /// + wire time).
    fn verb_cost(&self, size: usize) -> Duration {
        Mechanism::Rdma.cost(size).latency
    }

    /// CPU occupancy of posting that verb (the blocking portion charged
    /// to a pipeline core).
    fn verb_cpu_cost(&self, size: usize) -> Duration {
        Mechanism::Rdma.cost(size).cpu
    }

    /// Marginal latency of one additional `size`-byte message in a
    /// coalesced vectored verb: the wire/landing part without the
    /// already-paid post.
    fn verb_marginal(&self, size: usize) -> Duration {
        self.verb_cost(size)
            .saturating_sub(self.verb_cpu_cost(size))
    }

    /// Total latency of a coalesced vectored verb carrying `batch`
    /// messages of `size` bytes each (one post/doorbell, per-message
    /// wire time).
    fn verb_batch(&self, size: usize, batch: u32) -> Duration {
        if batch == 0 {
            return Duration::ZERO;
        }
        self.verb_cost(size) + self.verb_marginal(size) * (batch - 1)
    }

    /// Accelerator-side compute for `batch` back-to-back requests of
    /// `app` on one persistent worker: kernel time plus the
    /// dynamic-parallelism spawn overhead per child launch (§6.3).
    fn kernel_cost(&self, app: &AppProfile, batch: u32) -> Duration {
        let gpu = GpuProfile::reference();
        (app.kernel + gpu.dynamic_parallelism_gap * app.launches) * batch
    }

    /// Provisioning delay when the elastic control plane unparks a
    /// remote worker (driver-managed persistent-kernel spin-up, §3.2).
    fn provision_cost(&self) -> Duration {
        GpuProfile::reference().provision
    }
}

/// The host Xeon E5-2620 v2 running the Lynx pipeline ("Lynx on the host
/// CPU", Figure 6's `HostCores` designs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XeonProfile;

impl XeonProfile {
    /// Xeon E5-2620 v2 cores available on each testbed server.
    pub const CORES: usize = calib::XEON_CORES;
}

impl CostProfile for XeonProfile {
    fn name(&self) -> &'static str {
        "xeon-e5"
    }

    fn cpu(&self) -> CpuKind {
        CpuKind::XeonE5
    }

    fn pipeline_cores(&self) -> usize {
        Self::CORES
    }

    fn dispatch_cost(&self) -> Duration {
        calib::DISPATCH_COST_XEON
    }

    fn dispatch_marginal(&self) -> Duration {
        calib::DISPATCH_MARGINAL_XEON
    }

    fn forward_cost(&self) -> Duration {
        calib::FORWARD_COST_XEON
    }

    fn forward_marginal(&self) -> Duration {
        calib::FORWARD_MARGINAL_XEON
    }

    fn mq_scan(&self) -> Duration {
        calib::MQ_SCAN_COST_XEON
    }
}

/// The Mellanox BlueField SmartNIC: 7 ARM A72 cores running the Lynx
/// pipeline over the VMA user-level stack (§6.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BluefieldProfile;

impl BluefieldProfile {
    /// BlueField ARM cores used for Lynx: "We use 7 ARM cores (out of 8)".
    pub const LYNX_CORES: usize = calib::BLUEFIELD_LYNX_CORES;

    /// Relative speed of an 800 MHz ARM A72 vs a Xeon core for general
    /// application work (Figure 9's memcached comparison).
    pub const RELATIVE_SPEED: f64 = calib::ARM_RELATIVE_SPEED;
}

impl CostProfile for BluefieldProfile {
    fn name(&self) -> &'static str {
        "bluefield"
    }

    fn cpu(&self) -> CpuKind {
        CpuKind::ArmA72
    }

    fn pipeline_cores(&self) -> usize {
        Self::LYNX_CORES
    }

    fn dispatch_cost(&self) -> Duration {
        calib::DISPATCH_COST_ARM
    }

    fn dispatch_marginal(&self) -> Duration {
        calib::DISPATCH_MARGINAL_ARM
    }

    fn forward_cost(&self) -> Duration {
        calib::FORWARD_COST_ARM
    }

    fn forward_marginal(&self) -> Duration {
        calib::FORWARD_MARGINAL_ARM
    }

    fn mq_scan(&self) -> Duration {
        calib::MQ_SCAN_COST_ARM
    }
}

/// The Innova Flex bump-in-the-wire FPGA NIC (§5.2, §6.2): a hardware
/// pipeline accepting one packet per initiation interval, 15× the packet
/// rate of BlueField's ARM cores.
///
/// Dispatch and forward cost *one initiation interval each* — the pipeline
/// is fully overlapped, so the marginal cost of an additional packet
/// equals the full cost (no batching advantage, none needed), and the
/// round-robin scan is free (parallel hardware comparators).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FpgaProfile;

impl FpgaProfile {
    /// One 64 B packet accepted every 135 ns → 7.4 M pkt/s (§6.2).
    pub const INITIATION_INTERVAL: Duration = calib::FPGA_INITIATION_INTERVAL;

    /// Depth of the processing pipeline (ingress to mqueue write).
    pub const PIPELINE_LATENCY: Duration = calib::FPGA_PIPELINE_LATENCY;

    /// Host-core cost per message of the UC-ring refill helper thread.
    pub const HELPER_COST: Duration = calib::FPGA_HELPER_COST;

    /// Theoretical packet rate ceiling (1 / initiation interval).
    pub fn peak_pps(&self) -> f64 {
        1.0 / Self::INITIATION_INTERVAL.as_secs_f64()
    }
}

impl CostProfile for FpgaProfile {
    fn name(&self) -> &'static str {
        "innova-fpga"
    }

    /// The host CPU kind of the helper thread that refills the UC QP
    /// receive ring (§5.2) — the only instruction-stream CPU on this
    /// platform's request path.
    fn cpu(&self) -> CpuKind {
        CpuKind::XeonE5
    }

    fn pipeline_cores(&self) -> usize {
        1
    }

    fn dispatch_cost(&self) -> Duration {
        Self::INITIATION_INTERVAL
    }

    fn forward_cost(&self) -> Duration {
        Self::INITIATION_INTERVAL
    }

    fn mq_scan(&self) -> Duration {
        Duration::ZERO
    }
}

/// The Intel Visual Compute Accelerator's enclave-side cost surface
/// (§5.4, §6.2): three E3 nodes polling mqueues that live in *host*
/// memory mapped over PCIe (the paper's workaround for the RDMA-into-VCA
/// bug — "a sub-optimal configuration").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VcaProfile;

impl VcaProfile {
    /// SGX enclave transition (ecall or ocall) on the E3 processors.
    pub const SGX_TRANSITION: Duration = calib::SGX_TRANSITION;

    /// Per-message forwarding cost of the host-based network bridge.
    pub const BRIDGE_FORWARD: Duration = calib::VCA_BRIDGE_FORWARD;

    /// One-way latency of IP-over-PCIe tunneling between host and node.
    pub const IP_OVER_PCIE: Duration = calib::VCA_IP_OVER_PCIE;

    /// VCA node kernel network stack receive cost per message.
    pub const KERNEL_RX: Duration = calib::VCA_KERNEL_RX;

    /// VCA node kernel network stack send cost per message.
    pub const KERNEL_TX: Duration = calib::VCA_KERNEL_TX;

    /// Enclave poll of an mqueue in mapped host memory over PCIe.
    pub const MAPPED_POLL: Duration = calib::VCA_MAPPED_POLL;

    /// Mapped PCIe read/write of a small payload from the VCA node.
    pub const MAPPED_ACCESS: Duration = calib::VCA_MAPPED_ACCESS;

    /// One-way latency of the baseline network path into a node: host
    /// bridge forwarding plus IP-over-PCIe tunneling.
    pub fn bridge_path_latency(&self) -> Duration {
        Self::BRIDGE_FORWARD + Self::IP_OVER_PCIE
    }

    /// Per-message kernel network stack costs on a node `(rx, tx)` —
    /// paid by the baseline, bypassed by Lynx.
    pub fn kernel_stack_cost(&self) -> (Duration, Duration) {
        (Self::KERNEL_RX, Self::KERNEL_TX)
    }
}

impl CostProfile for VcaProfile {
    fn name(&self) -> &'static str {
        "vca-e3"
    }

    fn cpu(&self) -> CpuKind {
        CpuKind::E3
    }

    /// Three independent E3 nodes behind the PCIe switch.
    fn pipeline_cores(&self) -> usize {
        3
    }

    /// Pulling one request: mapped PCIe read of the slot.
    fn dispatch_cost(&self) -> Duration {
        Self::MAPPED_ACCESS
    }

    /// Writing one response back through the mapped window.
    fn forward_cost(&self) -> Duration {
        Self::MAPPED_ACCESS
    }

    /// Uncached PCIe-mapped doorbell poll, per queue.
    fn mq_scan(&self) -> Duration {
        Self::MAPPED_POLL
    }

    /// The app kernel runs on the E3 itself (no GPU, no dynamic
    /// parallelism), scaled by the E3's relative speed.
    fn kernel_cost(&self, app: &AppProfile, batch: u32) -> Duration {
        app.kernel.div_f64(CpuKind::E3.speed()) * batch
    }
}

/// The platform profile whose *server-logic* costs apply when Lynx
/// pipeline code runs on the given CPU kind.
///
/// E3 maps to [`XeonProfile`]: the VCA's nodes run the same x86 host code
/// path (its enclave-side surface is [`VcaProfile`], selected explicitly
/// by the VCA experiments).
pub fn profile_for(kind: CpuKind) -> &'static dyn CostProfile {
    match kind {
        CpuKind::XeonE5 | CpuKind::E3 => &XeonProfile,
        CpuKind::ArmA72 => &BluefieldProfile,
    }
}

/// Analytic profile of a K40m/K80-class GPU: the accelerator-side numbers
/// that used to be read as raw [`calib`] consts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Maximum concurrently resident threadblocks.
    pub max_threadblocks: usize,
    /// Kernel speed relative to the reference K40m.
    pub relative_speed: f64,
    /// Single-thread payload copy bandwidth (the echo kernel).
    pub thread_copy_bps: f64,
    /// Latency for a polling threadblock to notice a doorbell update.
    pub poll_detect: Duration,
    /// Local read/write of an mqueue slot in device memory.
    pub local_io: Duration,
    /// Gap between dependent kernel launches on the host-centric path.
    pub launch_gap: Duration,
    /// Overhead of spawning one child kernel with dynamic parallelism.
    pub dynamic_parallelism_gap: Duration,
    /// Serialized driver occupancy per host-centric request.
    pub driver_occupancy: Duration,
    /// Per-request latency overhead of the host-centric path (§3.2).
    pub hostcentric_overhead: Duration,
    /// Extra per-message cost of the RDMA-read write barrier (§5.1).
    pub write_barrier: Duration,
    /// Persistent-kernel spin-up when the control plane unparks a worker.
    pub provision: Duration,
}

impl GpuProfile {
    /// NVIDIA Tesla K40m — the paper's primary microbenchmark GPU.
    pub const fn k40m() -> GpuProfile {
        GpuProfile {
            name: "K40m",
            max_threadblocks: calib::K40M_MAX_THREADBLOCKS,
            relative_speed: 1.0,
            thread_copy_bps: calib::GPU_THREAD_COPY_BPS,
            poll_detect: calib::GPU_POLL_DETECT,
            local_io: Duration::from_nanos(200),
            launch_gap: calib::KERNEL_LAUNCH_GAP,
            dynamic_parallelism_gap: calib::DYNAMIC_PARALLELISM_GAP,
            driver_occupancy: calib::DRIVER_OCCUPANCY_PER_REQUEST,
            hostcentric_overhead: calib::HOSTCENTRIC_LATENCY_OVERHEAD,
            write_barrier: calib::WRITE_BARRIER_PENALTY,
            provision: calib::GPU_WORKER_PROVISION,
        }
    }

    /// NVIDIA Tesla K80 (one die): "slower than K40m and achieves
    /// 3 300 req/sec at most" (§6.3, footnote 2).
    pub const fn k80() -> GpuProfile {
        let mut p = GpuProfile::k40m();
        p.name = "K80";
        p.relative_speed = calib::K80_RELATIVE_SPEED;
        p
    }

    /// The reference accelerator all service times are denominated in.
    pub const fn reference() -> GpuProfile {
        GpuProfile::k40m()
    }
}

/// Parameters of the LLC noisy-neighbor interference model (§3.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterferenceProfile {
    /// Probability a victim request hits a long LLC-refill stall.
    pub stall_prob: f64,
    /// Mean of the exponential stall added on such hits.
    pub stall_mean: Duration,
    /// Uniform victim service-time inflation while the neighbor runs.
    pub victim_inflation: f64,
    /// Neighbor slowdown while the victim server runs.
    pub neighbor_slowdown: f64,
}

impl InterferenceProfile {
    /// The calibrated §3.2 parameters (13× victim p99 inflation, 21 %
    /// neighbor slowdown).
    pub const fn xeon_llc() -> InterferenceProfile {
        InterferenceProfile {
            stall_prob: calib::LLC_STALL_PROB,
            stall_mean: calib::LLC_STALL_MEAN,
            victim_inflation: calib::LLC_VICTIM_INFLATION,
            neighbor_slowdown: calib::LLC_NEIGHBOR_SLOWDOWN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_return_the_exact_calib_values() {
        assert_eq!(XeonProfile.dispatch_cost(), calib::DISPATCH_COST_XEON);
        assert_eq!(XeonProfile.forward_cost(), calib::FORWARD_COST_XEON);
        assert_eq!(XeonProfile.mq_scan(), calib::MQ_SCAN_COST_XEON);
        assert_eq!(BluefieldProfile.dispatch_cost(), calib::DISPATCH_COST_ARM);
        assert_eq!(
            BluefieldProfile.dispatch_marginal(),
            calib::DISPATCH_MARGINAL_ARM
        );
        assert_eq!(BluefieldProfile.mq_poll_rtt(), calib::MQ_POLL_RTT_PER_QUEUE);
        assert_eq!(FpgaProfile.dispatch_cost(), calib::FPGA_INITIATION_INTERVAL);
        assert_eq!(VcaProfile.mq_scan(), calib::VCA_MAPPED_POLL);
    }

    #[test]
    fn batch_variants_amortize() {
        let p = &BluefieldProfile;
        assert_eq!(p.dispatch_batch(1), p.dispatch_cost());
        assert_eq!(
            p.dispatch_batch(4),
            p.dispatch_cost() + p.dispatch_marginal() * 3
        );
        assert!(p.forward_batch(8) < p.forward_cost() * 8);
        assert_eq!(p.dispatch_batch(0), Duration::ZERO);
    }

    #[test]
    fn verb_cost_matches_fabric_rdma() {
        let c = Mechanism::Rdma.cost(1024);
        assert_eq!(XeonProfile.verb_cost(1024), c.latency);
        assert_eq!(XeonProfile.verb_cpu_cost(1024), c.cpu);
        assert!(XeonProfile.verb_batch(64, 4) < XeonProfile.verb_cost(64) * 4);
    }

    #[test]
    fn kernel_cost_includes_dynamic_parallelism() {
        let app = AppProfile::delay_echo(Duration::from_micros(20), 64);
        let one = BluefieldProfile.kernel_cost(&app, 1);
        assert!(one > Duration::from_micros(20));
        assert_eq!(BluefieldProfile.kernel_cost(&app, 3), one * 3);
    }

    #[test]
    fn profile_for_matches_legacy_cost_mapping() {
        assert_eq!(profile_for(CpuKind::ArmA72).name(), "bluefield");
        assert_eq!(profile_for(CpuKind::XeonE5).name(), "xeon-e5");
        // E3 historically used the Xeon server-logic costs.
        assert_eq!(profile_for(CpuKind::E3).name(), "xeon-e5");
    }

    #[test]
    fn app_profile_of_probes_the_processor() {
        let p = crate::DelayProcessor::new(Duration::from_micros(50));
        let app = AppProfile::of("delay-echo", &p, 64);
        assert_eq!(app, AppProfile::delay_echo(Duration::from_micros(50), 64));
    }

    #[test]
    fn gpu_profile_variants() {
        assert_eq!(GpuProfile::k40m().relative_speed, 1.0);
        assert!(GpuProfile::k80().relative_speed < 1.0);
        assert_eq!(GpuProfile::reference(), GpuProfile::k40m());
    }
}
