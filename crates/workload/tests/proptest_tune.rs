//! Property-based tests of the deployment auto-tuner.
//!
//! Two invariants matter to callers: whatever `tune` emits must pass the
//! same `Validate` checks the server builder runs (no "tuned" config that
//! `deploy` then rejects), and the whole tuner must be a pure function of
//! its inputs so a tuned deployment replays byte-identically.

use std::time::Duration;

use proptest::prelude::*;

use lynx_core::{BatchPolicy, Validate};
use lynx_device::{AppProfile, BluefieldProfile, CostProfile};
use lynx_workload::tune::{predict, tune, Candidate, TuneGoal, TuneSpace};

/// Picks the subset of `all` selected by `mask`, falling back to the
/// first element so no axis ever comes out empty.
fn subset(all: &[usize], mask: u32) -> Vec<usize> {
    let picked: Vec<usize> = all
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, v)| v)
        .collect();
    if picked.is_empty() {
        vec![all[0]]
    } else {
        picked
    }
}

fn batch_axis(mask: u32) -> Vec<BatchPolicy> {
    let all = [
        BatchPolicy::Unbatched,
        BatchPolicy::Fixed(4),
        BatchPolicy::Fixed(16),
        BatchPolicy::Fixed(32),
    ];
    let picked: Vec<BatchPolicy> = all
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, v)| v)
        .collect();
    if picked.is_empty() {
        vec![BatchPolicy::Unbatched]
    } else {
        picked
    }
}

fn space_from(masks: (u32, u32, u32, u32, u32)) -> TuneSpace {
    TuneSpace {
        gpus: subset(&[1, 2, 4], masks.0),
        mqueues_per_gpu: subset(&[1, 8, 30, 60, 240], masks.1),
        snic_cores: subset(&[1, 2, 4, 6], masks.2),
        batch: batch_axis(masks.3),
        slots: subset(&[16, 32, 64], masks.4),
        ..TuneSpace::bluefield()
    }
}

/// Builds a goal from raw draws: `load_kreq == 0` means "maximize".
fn goal_from(delay_us: u64, payload: usize, slo_us: u64, load_kreq: u64) -> TuneGoal {
    let app = AppProfile::delay_echo(Duration::from_micros(delay_us), payload);
    let slo = Duration::from_micros(slo_us);
    if load_kreq == 0 {
        TuneGoal::maximize(app, slo)
    } else {
        TuneGoal::provision(app, load_kreq as f64 * 1_000.0, slo)
    }
}

proptest! {
    /// Every configuration the tuner emits passes the same [`Validate`]
    /// checks the server builder runs, and its knobs all come from the
    /// declared axes.
    #[test]
    fn tune_output_passes_builder_validation(
        masks in (0u32..8, 0u32..32, 0u32..16, 0u32..16, 0u32..8),
        delay_us in 5u64..1_000,
        payload in 16usize..1_024,
        slo_us in 200u64..50_000,
        load_kreq in 0u64..400,
    ) {
        let space = space_from(masks);
        let goal = goal_from(delay_us, payload, slo_us, load_kreq);
        if let Ok(t) = tune(&BluefieldProfile, &goal, &space) {
            prop_assert!(t.prediction.feasible, "tune must only return feasible configs");
            let dc = t.deploy_config(None);
            prop_assert!(dc.pipeline.check(BluefieldProfile.pipeline_cores()).is_ok());
            prop_assert!(dc.mq.validate().is_ok());
            prop_assert!(dc.control.validate().is_ok());
            prop_assert!(dc.cache.validate().is_ok());
            prop_assert!(!dc.cache.enabled, "no protocol given, cache must be emitted off");
            prop_assert!(t.cache.validate().is_ok());
            prop_assert!(dc.rmq.validate().is_ok());
            prop_assert!(space.gpus.contains(&t.candidate.gpus));
            prop_assert!(space.mqueues_per_gpu.contains(&t.candidate.mqueues_per_gpu));
            prop_assert!(space.snic_cores.contains(&t.candidate.snic_cores));
            prop_assert!(space.batch.contains(&t.candidate.batch));
            prop_assert!(space.slots.contains(&t.candidate.slots));
        }
    }

    /// The whole search replays byte-identically: two runs over the same
    /// inputs render the same `Debug` output (which covers every knob,
    /// the full prediction, and the evaluation count).
    #[test]
    fn tune_replays_byte_identically(
        masks in (0u32..8, 0u32..32, 0u32..16, 0u32..16, 0u32..8),
        delay_us in 5u64..1_000,
        payload in 16usize..1_024,
        slo_us in 200u64..50_000,
        load_kreq in 0u64..400,
    ) {
        let space = space_from(masks);
        let goal = goal_from(delay_us, payload, slo_us, load_kreq);
        let a = tune(&BluefieldProfile, &goal, &space);
        let b = tune(&BluefieldProfile, &goal, &space);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// The predictor is deterministic point-wise, including the
    /// fixed-point iteration that sizes batched forward cycles.
    #[test]
    fn predict_is_pure(
        delay_us in 5u64..1_000,
        payload in 16usize..1_024,
        gpus in 1usize..=4,
        mq in 1usize..=240,
        cores in 1usize..=6,
        k in 0usize..=32,
        slots in 1usize..=128,
    ) {
        let goal = goal_from(delay_us, payload, 2_000, 0);
        let cand = Candidate {
            gpus,
            mqueues_per_gpu: mq,
            snic_cores: cores,
            batch: if k == 0 { BatchPolicy::Unbatched } else { BatchPolicy::Fixed(k) },
            slots,
            cache: false,
        };
        let space = TuneSpace::bluefield();
        let a = predict(&BluefieldProfile, &goal, &space, &cand);
        let b = predict(&BluefieldProfile, &goal, &space, &cand);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
