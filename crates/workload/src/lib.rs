//! # lynx-workload — load generation and measurement
//!
//! The sockperf-equivalent of the paper's methodology (§6: "We use
//! sockperf with VMA to evaluate the server performance ... We run each
//! experiment 5 times, 20 seconds (millions of requests), with 2 seconds
//! warmup"):
//!
//! * [`OpenLoopClient`] — Poisson (or uniform-rate) request arrivals at a
//!   configured rate, independent of responses: measures latency under a
//!   given offered load.
//! * [`ClosedLoopClient`] — a fixed window of outstanding requests, each
//!   response immediately triggering the next request: measures maximum
//!   sustainable throughput.
//! * [`run_measured`] — warmup/measure orchestration returning a
//!   [`RunSummary`] with throughput and latency percentiles.
//! * [`sweep`] — offered-load ladders producing
//!   load–latency curves, saturation capacities and SLO operating points.
//! * [`report`] — fixed-width tables and CSV output used by every bench
//!   harness to print the paper's rows.
//! * [`mod@tune`] — the cost-model-driven deployment auto-tuner: an analytic
//!   throughput/latency predictor over the typed
//!   [`lynx_device::CostProfile`] surface and a deterministic search that
//!   emits validated deployment configurations.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
pub mod report;
mod runner;
pub mod sweep;
pub mod tune;
pub mod zipf;

pub use client::{
    ClientStats, ClosedLoopClient, FleetClient, LoadClient, OpenLoopClient, PayloadFn,
    TcpClosedLoopClient, ValidateFn, FLEET_PORT,
};
pub use runner::{run_measured, RunSpec, RunSummary};
pub use tune::{
    predict, tune, Candidate, Prediction, Stage, TuneError, TuneGoal, TuneSpace, TunedConfig,
};
pub use zipf::ZipfKeyGen;
