//! Load-generating clients.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use lynx_net::{ConnId, HostStack, SockAddr};
use lynx_sim::stats::Meter;
use lynx_sim::{rng, Histogram, Sim, Time};

/// Generates the payload of request number `seq`.
pub type PayloadFn = Rc<dyn Fn(u64) -> Vec<u8>>;

/// Optional validation of a response payload against its request number.
pub type ValidateFn = Rc<dyn Fn(u64, &[u8]) -> bool>;

/// Measurement snapshot of one client.
#[derive(Clone, Debug)]
pub struct ClientStats {
    /// Requests sent inside the measurement window.
    pub sent: u64,
    /// Responses received inside the measurement window.
    pub received: u64,
    /// Responses failing the validation hook.
    pub invalid: u64,
    /// Requests rejected by the server's admission control. Lynx sheds
    /// load with an immediate *empty* (0-byte) reply, so clients observe
    /// rejects instead of timing out; rejected requests count neither as
    /// received nor into the latency histogram.
    pub rejected: u64,
    /// Latency histogram (measurement window only).
    pub latency: Histogram,
    /// Measured throughput in responses/s (`None` before the window
    /// closes).
    pub throughput: Option<f64>,
}

/// A client that can participate in a measured run.
pub trait LoadClient {
    /// Starts generating load.
    fn start(&self, sim: &mut Sim);
    /// Opens the measurement window.
    fn begin_measure(&self, now: Time);
    /// Closes the measurement window.
    fn end_measure(&self, now: Time);
    /// Snapshot of the measured statistics.
    fn stats(&self) -> ClientStats;
}

struct Shared {
    stack: HostStack,
    dst: SockAddr,
    payload: PayloadFn,
    validate: Option<ValidateFn>,
    next_seq: u64,
    next_port: u16,
    inflight: HashMap<u16, (u64, Time)>,
    latency: Histogram,
    sent_meter: Meter,
    recv_meter: Meter,
    invalid: u64,
    rejected: u64,
    measuring: bool,
}

const PORT_LO: u16 = 10_000;
const PORT_HI: u16 = 39_999;

impl Shared {
    fn new(stack: HostStack, dst: SockAddr, payload: PayloadFn) -> Shared {
        Shared {
            stack,
            dst,
            payload,
            validate: None,
            next_seq: 0,
            next_port: PORT_LO,
            inflight: HashMap::new(),
            latency: Histogram::new(),
            sent_meter: Meter::new(),
            recv_meter: Meter::new(),
            invalid: 0,
            rejected: 0,
            measuring: false,
        }
    }

    fn alloc_port(&mut self) -> u16 {
        // One ephemeral port per in-flight request; wrap within the range.
        for _ in 0..=(PORT_HI - PORT_LO) {
            let p = self.next_port;
            self.next_port = if p == PORT_HI { PORT_LO } else { p + 1 };
            if !self.inflight.contains_key(&p) {
                return p;
            }
        }
        panic!("more than {} requests in flight", PORT_HI - PORT_LO);
    }

    fn send_one(&mut self, sim: &mut Sim) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let port = self.alloc_port();
        self.inflight.insert(port, (seq, sim.now()));
        self.sent_meter.record();
        let payload = (self.payload)(seq);
        let stack = self.stack.clone();
        let dst = self.dst;
        stack.send_udp(sim, port, dst, payload);
    }

    fn on_response(&mut self, sim: &mut Sim, port: u16, payload: &[u8]) -> bool {
        let Some((seq, sent_at)) = self.inflight.remove(&port) else {
            return false; // stale response after port reuse
        };
        if payload.is_empty() {
            // The server's admission-control reject marker: the request
            // was shed before dispatch. Matched (closed loops keep their
            // window) but not a served response.
            self.rejected += 1;
            return true;
        }
        if self.measuring {
            self.latency.record(sim.now() - sent_at);
        }
        self.recv_meter.record();
        if let Some(v) = &self.validate {
            if !v(seq, payload) {
                self.invalid += 1;
            }
        }
        true
    }

    fn stats(&self) -> ClientStats {
        ClientStats {
            sent: self.sent_meter.count(),
            received: self.recv_meter.count(),
            invalid: self.invalid,
            rejected: self.rejected,
            latency: self.latency.clone(),
            throughput: self.recv_meter.throughput(),
        }
    }
}

/// Open-loop UDP load generator: requests arrive by a Poisson process (or
/// at fixed spacing) at a configured rate, regardless of responses.
#[derive(Clone)]
pub struct OpenLoopClient {
    shared: Rc<RefCell<Shared>>,
    rate_per_sec: f64,
    poisson: bool,
}

impl fmt::Debug for OpenLoopClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpenLoopClient")
            .field("rate_per_sec", &self.rate_per_sec)
            .field("poisson", &self.poisson)
            .finish()
    }
}

impl OpenLoopClient {
    /// Creates a Poisson-arrival client sending `rate_per_sec` requests/s
    /// from `stack` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn new(stack: HostStack, dst: SockAddr, rate_per_sec: f64, payload: PayloadFn) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "rate must be positive"
        );
        let client = OpenLoopClient {
            shared: Rc::new(RefCell::new(Shared::new(stack, dst, payload))),
            rate_per_sec,
            poisson: true,
        };
        client.install_rx();
        client
    }

    /// Switches to deterministic (fixed-gap) arrivals.
    pub fn uniform(mut self) -> Self {
        self.poisson = false;
        self
    }

    /// Sets a response validation hook.
    pub fn validate(self, v: impl Fn(u64, &[u8]) -> bool + 'static) -> Self {
        self.shared.borrow_mut().validate = Some(Rc::new(v));
        self
    }

    fn install_rx(&self) {
        let shared = Rc::clone(&self.shared);
        let stack = self.shared.borrow().stack.clone();
        stack.bind_udp_default(move |sim, dgram| {
            shared
                .borrow_mut()
                .on_response(sim, dgram.dst.port, &dgram.payload);
        });
    }

    fn tick(&self, sim: &mut Sim) {
        self.shared.borrow_mut().send_one(sim);
        let gap = if self.poisson {
            rng::exponential(sim.rng(), Duration::from_secs_f64(1.0 / self.rate_per_sec))
        } else {
            Duration::from_secs_f64(1.0 / self.rate_per_sec)
        };
        let this = self.clone();
        sim.schedule_in(gap, move |sim| this.tick(sim));
    }
}

impl LoadClient for OpenLoopClient {
    fn start(&self, sim: &mut Sim) {
        let this = self.clone();
        sim.schedule_in(Duration::ZERO, move |sim| this.tick(sim));
    }

    fn begin_measure(&self, now: Time) {
        let mut s = self.shared.borrow_mut();
        s.sent_meter.start(now);
        s.recv_meter.start(now);
        s.measuring = true;
        s.latency.clear();
    }

    fn end_measure(&self, now: Time) {
        let mut s = self.shared.borrow_mut();
        s.sent_meter.stop(now);
        s.recv_meter.stop(now);
        s.measuring = false;
    }

    fn stats(&self) -> ClientStats {
        self.shared.borrow().stats()
    }
}

/// Closed-loop UDP load generator: `window` requests stay outstanding;
/// each response immediately triggers the next request. Measures the
/// server's saturation throughput.
#[derive(Clone)]
pub struct ClosedLoopClient {
    shared: Rc<RefCell<Shared>>,
    window: usize,
}

impl fmt::Debug for ClosedLoopClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClosedLoopClient")
            .field("window", &self.window)
            .finish()
    }
}

impl ClosedLoopClient {
    /// Creates a client keeping `window` requests in flight.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(stack: HostStack, dst: SockAddr, window: usize, payload: PayloadFn) -> Self {
        assert!(window > 0, "window must be positive");
        let client = ClosedLoopClient {
            shared: Rc::new(RefCell::new(Shared::new(stack, dst, payload))),
            window,
        };
        let shared = Rc::clone(&client.shared);
        let stack2 = client.shared.borrow().stack.clone();
        stack2.bind_udp_default(move |sim, dgram| {
            let matched = shared
                .borrow_mut()
                .on_response(sim, dgram.dst.port, &dgram.payload);
            if matched {
                shared.borrow_mut().send_one(sim);
            }
        });
        client
    }

    /// Sets a response validation hook.
    pub fn validate(self, v: impl Fn(u64, &[u8]) -> bool + 'static) -> Self {
        self.shared.borrow_mut().validate = Some(Rc::new(v));
        self
    }
}

impl LoadClient for ClosedLoopClient {
    fn start(&self, sim: &mut Sim) {
        for _ in 0..self.window {
            self.shared.borrow_mut().send_one(sim);
        }
    }

    fn begin_measure(&self, now: Time) {
        let mut s = self.shared.borrow_mut();
        s.sent_meter.start(now);
        s.recv_meter.start(now);
        s.measuring = true;
        s.latency.clear();
    }

    fn end_measure(&self, now: Time) {
        let mut s = self.shared.borrow_mut();
        s.sent_meter.stop(now);
        s.recv_meter.stop(now);
        s.measuring = false;
    }

    fn stats(&self) -> ClientStats {
        self.shared.borrow().stats()
    }
}

/// State of one logical client inside a [`FleetClient`].
#[derive(Clone, Copy)]
struct FleetSlot {
    seq: u64,
    sent_at: Time,
    inflight: bool,
}

struct FleetShared {
    stack: HostStack,
    dst: SockAddr,
    port: u16,
    req_bytes: usize,
    think: Duration,
    slots: Vec<FleetSlot>,
    latency: Histogram,
    sent_meter: Meter,
    recv_meter: Meter,
    invalid: u64,
    rejected: u64,
    measuring: bool,
}

impl FleetShared {
    fn send_for(&mut self, sim: &mut Sim, client: usize) {
        let slot = &mut self.slots[client];
        debug_assert!(!slot.inflight, "logical client already has a request out");
        slot.seq += 1;
        slot.sent_at = sim.now();
        slot.inflight = true;
        let (seq, n) = (slot.seq, self.req_bytes);
        let mut payload = vec![0u8; n];
        payload[..8].copy_from_slice(&(client as u64).to_le_bytes());
        payload[8..16].copy_from_slice(&seq.to_le_bytes());
        self.sent_meter.record();
        let stack = self.stack.clone();
        let (port, dst) = (self.port, self.dst);
        stack.send_udp(sim, port, dst, payload);
    }
}

/// Multiplexes a fleet of logical closed-loop clients over **one** UDP
/// port of one stack — the harness for client-count scalability runs
/// (e.g. one million simulated clients), where one simulated host and
/// ephemeral port per client would exhaust both the port range and
/// memory.
///
/// Each logical client keeps one request outstanding and sends its next
/// request a think-time after each response. Requests are identified by a
/// 16-byte header *inside the payload* — logical client id and per-client
/// sequence number, little-endian — so any echo-style service that
/// returns the request payload routes the response back to the right
/// logical client; the UDP port carries no identity. Responses with a
/// stale sequence number (duplicates) are dropped; responses shorter than
/// the header count as `invalid`.
///
/// Limitation: an admission-control reject is an *empty* reply, which
/// cannot name the logical client it belongs to. Rejects are counted but
/// the shed client's loop stalls — run fleets against deployments without
/// admission control (the intended scalability-experiment setup).
///
/// Think times draw from the simulator's own seeded RNG, so a fleet is
/// exactly as deterministic as the rest of the run.
#[derive(Clone)]
pub struct FleetClient {
    shared: Rc<RefCell<FleetShared>>,
    ramp: Duration,
}

impl fmt::Debug for FleetClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.shared.borrow();
        f.debug_struct("FleetClient")
            .field("clients", &s.slots.len())
            .field("port", &s.port)
            .field("req_bytes", &s.req_bytes)
            .finish()
    }
}

/// UDP source port a [`FleetClient`] binds by default — outside the
/// per-request ephemeral range used by the port-matched clients.
pub const FLEET_PORT: u16 = 45_000;

impl FleetClient {
    /// Creates a fleet of `clients` logical clients sending `req_bytes`
    /// requests (≥ 16 — the multiplexing header) from `stack` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `clients == 0` or `req_bytes < 16`.
    pub fn new(stack: HostStack, dst: SockAddr, clients: usize, req_bytes: usize) -> FleetClient {
        assert!(clients > 0, "a fleet needs at least one client");
        assert!(req_bytes >= 16, "payload must fit the 16-byte fleet header");
        let fleet = FleetClient {
            shared: Rc::new(RefCell::new(FleetShared {
                stack,
                dst,
                port: FLEET_PORT,
                req_bytes,
                think: Duration::ZERO,
                slots: vec![
                    FleetSlot {
                        seq: 0,
                        sent_at: Time::ZERO,
                        inflight: false,
                    };
                    clients
                ],
                latency: Histogram::new(),
                sent_meter: Meter::new(),
                recv_meter: Meter::new(),
                invalid: 0,
                rejected: 0,
                measuring: false,
            })),
            ramp: Duration::ZERO,
        };
        fleet.install_rx();
        fleet
    }

    /// Sets the mean exponential think time between a response and the
    /// client's next request (default: none — saturating closed loop).
    pub fn think(self, mean: Duration) -> FleetClient {
        self.shared.borrow_mut().think = mean;
        self
    }

    /// Spreads the fleet's first requests evenly over `ramp` instead of
    /// firing all of them at time zero.
    pub fn ramp(mut self, ramp: Duration) -> FleetClient {
        self.ramp = ramp;
        self
    }

    /// Uses `port` as the fleet's UDP source port instead of
    /// [`FLEET_PORT`] (several fleets can then share one stack).
    pub fn port(self, port: u16) -> FleetClient {
        self.shared.borrow_mut().port = port;
        self
    }

    /// Number of logical clients in the fleet.
    pub fn clients(&self) -> usize {
        self.shared.borrow().slots.len()
    }

    fn install_rx(&self) {
        let shared = Rc::clone(&self.shared);
        let (stack, port) = {
            let s = self.shared.borrow();
            (s.stack.clone(), s.port)
        };
        stack.bind_udp(port, move |sim, dgram| {
            FleetClient::on_response(&shared, sim, &dgram.payload);
        });
    }

    fn on_response(shared: &Rc<RefCell<FleetShared>>, sim: &mut Sim, payload: &[u8]) {
        let client = {
            let mut s = shared.borrow_mut();
            if payload.is_empty() {
                // Admission-control reject marker: anonymous, the shed
                // logical client cannot be identified (see type docs).
                s.rejected += 1;
                return;
            }
            if payload.len() < 16 {
                s.invalid += 1;
                return;
            }
            let client = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")) as usize;
            let seq = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
            if client >= s.slots.len() {
                s.invalid += 1;
                return;
            }
            let slot = s.slots[client];
            if !slot.inflight || slot.seq != seq {
                return; // duplicate or stale response
            }
            s.slots[client].inflight = false;
            if s.measuring {
                let d = sim.now() - slot.sent_at;
                s.latency.record(d);
            }
            s.recv_meter.record();
            client
        };
        let think = shared.borrow().think;
        if think.is_zero() {
            shared.borrow_mut().send_for(sim, client);
        } else {
            let gap = rng::exponential(sim.rng(), think);
            let shared = Rc::clone(shared);
            sim.schedule_in(gap, move |sim| {
                shared.borrow_mut().send_for(sim, client);
            });
        }
    }
}

impl LoadClient for FleetClient {
    fn start(&self, sim: &mut Sim) {
        let n = self.clients();
        let ramp = self.ramp;
        for client in 0..n {
            let gap = if ramp.is_zero() {
                Duration::ZERO
            } else {
                // Even spread: client i starts at i/n of the ramp.
                Duration::from_nanos((ramp.as_nanos() as u64 / n as u64) * client as u64)
            };
            let shared = Rc::clone(&self.shared);
            sim.schedule_in(gap, move |sim| {
                shared.borrow_mut().send_for(sim, client);
            });
        }
    }

    fn begin_measure(&self, now: Time) {
        let mut s = self.shared.borrow_mut();
        s.sent_meter.start(now);
        s.recv_meter.start(now);
        s.measuring = true;
        s.latency.clear();
    }

    fn end_measure(&self, now: Time) {
        let mut s = self.shared.borrow_mut();
        s.sent_meter.stop(now);
        s.recv_meter.stop(now);
        s.measuring = false;
    }

    fn stats(&self) -> ClientStats {
        let s = self.shared.borrow();
        ClientStats {
            sent: s.sent_meter.count(),
            received: s.recv_meter.count(),
            invalid: s.invalid,
            rejected: s.rejected,
            latency: s.latency.clone(),
            throughput: s.recv_meter.throughput(),
        }
    }
}

struct TcpSlot {
    conn: Option<ConnId>,
    seq: u64,
    sent_at: Time,
}

struct TcpShared {
    stack: HostStack,
    payload: PayloadFn,
    slots: Vec<TcpSlot>,
    next_seq: u64,
    latency: Histogram,
    sent_meter: Meter,
    recv_meter: Meter,
    rejected: u64,
    measuring: bool,
}

/// Closed-loop TCP client: one connection per window slot (responses on a
/// connection match its outstanding request), next request sent upon each
/// response.
#[derive(Clone)]
pub struct TcpClosedLoopClient {
    shared: Rc<RefCell<TcpShared>>,
    dst: SockAddr,
    window: usize,
}

impl fmt::Debug for TcpClosedLoopClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpClosedLoopClient")
            .field("window", &self.window)
            .finish()
    }
}

impl TcpClosedLoopClient {
    /// Creates a client with `window` connections to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(stack: HostStack, dst: SockAddr, window: usize, payload: PayloadFn) -> Self {
        assert!(window > 0, "window must be positive");
        TcpClosedLoopClient {
            shared: Rc::new(RefCell::new(TcpShared {
                stack,
                payload,
                slots: Vec::new(),
                next_seq: 0,
                latency: Histogram::new(),
                sent_meter: Meter::new(),
                recv_meter: Meter::new(),
                rejected: 0,
                measuring: false,
            })),
            dst,
            window,
        }
    }

    fn send_on(shared: &Rc<RefCell<TcpShared>>, sim: &mut Sim, slot: usize) {
        let (stack, conn, payload) = {
            let mut s = shared.borrow_mut();
            let seq = s.next_seq;
            s.next_seq += 1;
            let payload = (s.payload)(seq);
            let sl = &mut s.slots[slot];
            sl.seq = seq;
            sl.sent_at = sim.now();
            let conn = sl.conn.expect("slot connection established");
            s.sent_meter.record();
            (s.stack.clone(), conn, payload)
        };
        stack.send_tcp(sim, conn, payload);
    }
}

impl LoadClient for TcpClosedLoopClient {
    fn start(&self, sim: &mut Sim) {
        let stack = self.shared.borrow().stack.clone();
        for slot in 0..self.window {
            self.shared.borrow_mut().slots.push(TcpSlot {
                conn: None,
                seq: 0,
                sent_at: Time::ZERO,
            });
            let shared = Rc::clone(&self.shared);
            let shared2 = Rc::clone(&self.shared);
            let on_msg = move |sim: &mut Sim, _conn: ConnId, payload: lynx_sim::Payload| {
                {
                    let mut s = shared.borrow_mut();
                    if payload.is_empty() {
                        // Admission-control reject marker; the slot stays
                        // in the closed loop but the reply is not a
                        // served response.
                        s.rejected += 1;
                    } else {
                        let sent_at = s.slots[slot].sent_at;
                        if s.measuring {
                            let d = sim.now() - sent_at;
                            s.latency.record(d);
                        }
                        s.recv_meter.record();
                    }
                }
                TcpClosedLoopClient::send_on(&shared, sim, slot);
            };
            let on_connected = move |sim: &mut Sim, conn: ConnId| {
                shared2.borrow_mut().slots[slot].conn = Some(conn);
                TcpClosedLoopClient::send_on(&shared2, sim, slot);
            };
            stack.connect_tcp(sim, self.dst, on_msg, on_connected);
        }
    }

    fn begin_measure(&self, now: Time) {
        let mut s = self.shared.borrow_mut();
        s.sent_meter.start(now);
        s.recv_meter.start(now);
        s.measuring = true;
        s.latency.clear();
    }

    fn end_measure(&self, now: Time) {
        let mut s = self.shared.borrow_mut();
        s.sent_meter.stop(now);
        s.recv_meter.stop(now);
        s.measuring = false;
    }

    fn stats(&self) -> ClientStats {
        let s = self.shared.borrow();
        ClientStats {
            sent: s.sent_meter.count(),
            received: s.recv_meter.count(),
            invalid: 0,
            rejected: s.rejected,
            latency: s.latency.clone(),
            throughput: s.recv_meter.throughput(),
        }
    }
}
