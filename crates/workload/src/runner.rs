//! Warmup/measure experiment orchestration.

use std::fmt;
use std::time::Duration;

use lynx_sim::{Histogram, Sim};

use crate::{ClientStats, LoadClient};

/// Timing of a measured run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// Simulated time before measurement starts (excluded from stats).
    pub warmup: Duration,
    /// Length of the measurement window.
    pub measure: Duration,
}

impl Default for RunSpec {
    /// A scaled-down version of the paper's "20 seconds with 2 seconds
    /// warmup": long enough for tens of thousands of requests at the
    /// evaluated rates, short enough to iterate quickly.
    fn default() -> Self {
        RunSpec {
            warmup: Duration::from_millis(50),
            measure: Duration::from_millis(400),
        }
    }
}

impl RunSpec {
    /// A shorter spec for unit tests.
    pub fn quick() -> RunSpec {
        RunSpec {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(50),
        }
    }
}

/// Aggregated result of a measured run.
#[derive(Clone)]
pub struct RunSummary {
    /// Total responses/s across all clients.
    pub throughput: f64,
    /// Total requests sent in the window.
    pub sent: u64,
    /// Total responses received in the window.
    pub received: u64,
    /// Responses failing validation.
    pub invalid: u64,
    /// Requests shed by the server's admission control (observed as
    /// empty-reply rejects; excluded from `received` and `latency`).
    pub rejected: u64,
    /// Merged latency histogram.
    pub latency: Histogram,
}

impl fmt::Debug for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunSummary")
            .field("throughput", &self.throughput)
            .field("received", &self.received)
            .field("p50", &self.latency.try_percentile(50.0))
            .field("p99", &self.latency.try_percentile(99.0))
            .finish()
    }
}

impl RunSummary {
    /// Latency percentile shortcut (µs), or `None` when the measurement
    /// window recorded no responses — an empty window is a measurement
    /// failure, not a zero-microsecond latency, and conflating the two
    /// silently passed SLO assertions that should have failed.
    pub fn percentile_us(&self, p: f64) -> Option<f64> {
        self.latency
            .try_percentile(p)
            .map(|d| d.as_secs_f64() * 1e6)
    }

    /// Mean latency in µs.
    pub fn mean_us(&self) -> f64 {
        self.latency.mean().as_secs_f64() * 1e6
    }

    /// Throughput in Kreq/s.
    pub fn kreq_per_sec(&self) -> f64 {
        self.throughput / 1e3
    }
}

/// Runs `clients` against an already-assembled simulation: start all, run
/// the warmup, open the measurement window, run it, close, aggregate.
pub fn run_measured(sim: &mut Sim, clients: &[&dyn LoadClient], spec: RunSpec) -> RunSummary {
    for c in clients {
        c.start(sim);
    }
    sim.run_for(spec.warmup);
    let t0 = sim.now();
    for c in clients {
        c.begin_measure(t0);
    }
    sim.run_for(spec.measure);
    let t1 = sim.now();
    for c in clients {
        c.end_measure(t1);
    }
    let mut latency = Histogram::new();
    let (mut sent, mut received, mut invalid, mut rejected, mut tput) = (0, 0, 0, 0, 0.0);
    for c in clients {
        let ClientStats {
            sent: s,
            received: r,
            invalid: i,
            rejected: j,
            latency: l,
            throughput,
        } = c.stats();
        sent += s;
        received += r;
        invalid += i;
        rejected += j;
        latency.merge(&l);
        tput += throughput.unwrap_or(0.0);
    }
    RunSummary {
        throughput: tput,
        sent,
        received,
        invalid,
        rejected,
        latency,
    }
}
