//! Cost-model-driven deployment auto-tuner.
//!
//! The paper tunes every deployment by hand: Figure 6 sweeps mqueue
//! counts, Figure 8 fixes GPU counts per design, and the batching/core
//! sharding knobs introduced by later releases multiply the configuration
//! space again. This module closes the loop analytically: it consumes the
//! typed [`CostProfile`] surface (never the raw calibration constants),
//! predicts throughput and latency for a candidate deployment with a
//! queueing approximation, and searches the discrete knob space with
//! deterministic coordinate descent.
//!
//! The pipeline is:
//!
//! 1. [`TuneGoal`] states *what* to achieve — the application's
//!    [`AppProfile`], an offered load (or zero to maximize), and a p99 SLO.
//! 2. [`TuneSpace`] states *which* knob values may be considered.
//! 3. [`predict`] scores one candidate: per-stage capacities (SNIC CPU,
//!    accelerator workers, ring slots, wire, admission ceiling) and an
//!    M/D/1-style latency estimate.
//! 4. [`tune`] walks the space and emits a [`TunedConfig`] whose
//!    [`TunedConfig::deploy_config`] passes the same [`Validate`] checks
//!    [`lynx_core::LynxServerBuilder`] enforces.
//!
//! The search is pure arithmetic over the profile's `Duration`s — no
//! randomness, no wall clock — so two runs with the same inputs produce
//! byte-identical results (see the property tests).
//!
//! See `docs/TUNING.md` for the cost-model derivation and the measured
//! predictor accuracy.

use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use lynx_core::testbed::DeployConfig;
use lynx_core::{
    BatchPolicy, CacheConfig, CacheProtocol, ControlConfig, MqueueConfig, PipelineConfig,
    SnicPlatform, Validate, SLOT_HEADER,
};
use lynx_device::{AppProfile, CostProfile, CpuKind, GpuProfile};
use lynx_net::{StackKind, StackProfile};

/// What the tuner should achieve.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneGoal {
    /// The application being deployed.
    pub app: AppProfile,
    /// Offered load in requests/second. `0.0` means "maximize throughput"
    /// (closed-loop saturation, Figure 6 style); a positive value means
    /// "provision the cheapest deployment that sustains this rate"
    /// (Figure 8 style).
    pub offered_load: f64,
    /// The 99th-percentile latency target the deployment must meet at its
    /// operating point.
    pub slo_p99: Duration,
}

impl TuneGoal {
    /// Goal: saturate — find the configuration with the highest predicted
    /// throughput whose p99 at 85% utilization still meets `slo_p99`.
    pub fn maximize(app: AppProfile, slo_p99: Duration) -> TuneGoal {
        TuneGoal {
            app,
            offered_load: 0.0,
            slo_p99,
        }
    }

    /// Goal: provision — find the cheapest configuration that sustains
    /// `offered_load` within `slo_p99`.
    pub fn provision(app: AppProfile, offered_load: f64, slo_p99: Duration) -> TuneGoal {
        TuneGoal {
            app,
            offered_load,
            slo_p99,
        }
    }
}

/// The discrete configuration space the tuner may explore.
///
/// Axes are searched in declaration order; every axis must be non-empty.
/// The values are deliberately plain `Vec`s so experiments can pin an axis
/// by giving it a single element.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneSpace {
    /// Candidate GPU counts.
    pub gpus: Vec<usize>,
    /// Candidate mqueues (= persistent workers) per GPU.
    pub mqueues_per_gpu: Vec<usize>,
    /// Candidate SNIC core counts dedicated to the dispatch/forward
    /// pipeline (only engaged by batched policies).
    pub snic_cores: Vec<usize>,
    /// Candidate batching policies.
    pub batch: Vec<BatchPolicy>,
    /// Candidate ring depths (slots per mqueue).
    pub slots: Vec<usize>,
    /// Whether the SNIC-resident hot-key cache may be enabled. Defaults
    /// to `vec![false]` (axis pinned off) so existing spaces and goldens
    /// are unchanged; workloads with a measured hit rate opt in with
    /// `vec![false, true]`.
    pub cache: Vec<bool>,
    /// Expected cache hit rate of the workload's key distribution when
    /// the cache is enabled (e.g. ~0.9 for Zipf θ=0.99 over a hot set
    /// that fits the byte budget). Not a tunable — it is a property of
    /// the workload, measured or estimated by the caller.
    pub cache_hit_rate: f64,
    /// Cache byte budget per SNIC lane carried into the emitted
    /// deployment when the cache axis picks `true`.
    pub cache_bytes_per_lane: usize,
    /// I/O stack the server uses.
    pub stack_kind: StackKind,
    /// Distinct client machines driving the server. The batched
    /// dispatcher shards by client key, so effective dispatch
    /// parallelism is `min(snic_cores, client_flows)`.
    pub client_flows: usize,
    /// The accelerator model serving the workers; its
    /// [`relative_speed`](GpuProfile::relative_speed) scales every
    /// worker-side cost, and its threadblock budget bounds
    /// `mqueues_per_gpu`.
    pub gpu: GpuProfile,
    /// Control plane carried into the emitted deployment; its admission
    /// ceiling (when enabled) caps predicted throughput.
    pub control: ControlConfig,
    /// Round-trip network + client-stack overhead added to every
    /// predicted latency: client TX/RX processing plus wire propagation
    /// both ways. Not a tunable — it rides on every candidate equally.
    pub client_rtt_overhead: Duration,
    /// Server link bandwidth in bytes/second (the wire capacity stage).
    pub link_bandwidth_bps: f64,
}

/// Per-direction UDP header overhead the wire stage charges on top of the
/// application payload (Ethernet + IP + UDP framing).
const WIRE_OVERHEAD_BYTES: usize = 46;

impl TuneSpace {
    /// The full knob space of the paper's BlueField testbed: up to four
    /// K40m-class GPUs, mqueue counts spanning Figure 6's sweep, the ARM
    /// pipeline's core sharding and batching options, and power-of-two
    /// ring depths.
    pub fn bluefield() -> TuneSpace {
        TuneSpace {
            gpus: vec![1, 2, 3, 4],
            mqueues_per_gpu: vec![1, 2, 4, 8, 15, 30, 60, 120, 240],
            snic_cores: vec![1, 2, 3, 4, 5, 6],
            batch: vec![
                BatchPolicy::Unbatched,
                BatchPolicy::Fixed(4),
                BatchPolicy::Fixed(8),
                BatchPolicy::Fixed(16),
                BatchPolicy::Fixed(32),
            ],
            slots: vec![16, 32, 64, 128],
            cache: vec![false],
            cache_hit_rate: 0.0,
            cache_bytes_per_lane: 4 << 20,
            stack_kind: StackKind::Vma,
            client_flows: 2, // the paper's two client machines
            gpu: GpuProfile::reference(),
            control: ControlConfig::disabled(),
            // Client Xeon/VMA tx+rx (0.8 + 1.0 us) plus two switch
            // traversals of ~1.3 us propagation each way.
            client_rtt_overhead: Duration::from_micros(4),
            link_bandwidth_bps: 3.125e9, // 25 Gbps BlueField port
        }
    }

    /// A reduced grid for CI smoke runs: the same axes with 2–3 values
    /// each, small enough to search in well under a second.
    pub fn reduced() -> TuneSpace {
        TuneSpace {
            gpus: vec![1, 4],
            mqueues_per_gpu: vec![4, 15, 60],
            snic_cores: vec![2, 4],
            batch: vec![BatchPolicy::Unbatched, BatchPolicy::Fixed(16)],
            slots: vec![32, 64],
            ..TuneSpace::bluefield()
        }
    }

    fn check_nonempty(&self) -> Result<(), TuneError> {
        for (axis, empty) in [
            ("gpus", self.gpus.is_empty()),
            ("mqueues_per_gpu", self.mqueues_per_gpu.is_empty()),
            ("snic_cores", self.snic_cores.is_empty()),
            ("batch", self.batch.is_empty()),
            ("slots", self.slots.is_empty()),
            ("cache", self.cache.is_empty()),
        ] {
            if empty {
                return Err(TuneError::EmptySpace { axis });
            }
        }
        Ok(())
    }
}

/// The pipeline stage that limits a candidate's predicted throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// SNIC CPU: protocol stack + dispatcher + forwarder cycles.
    SnicCpu,
    /// Accelerator workers: kernel time across all persistent workers.
    Accelerator,
    /// Ring occupancy: all slots in flight.
    Ring,
    /// Server network port serialization.
    Wire,
    /// The control plane's admission ceiling.
    Admission,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::SnicCpu => "snic-cpu",
            Stage::Accelerator => "accelerator",
            Stage::Ring => "ring",
            Stage::Wire => "wire",
            Stage::Admission => "admission",
        })
    }
}

/// The analytic model's verdict on one candidate configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct Prediction {
    /// Sustainable throughput (responses/second).
    pub throughput: f64,
    /// Predicted median latency at the operating point.
    pub p50: Duration,
    /// Predicted 99th-percentile latency at the operating point.
    pub p99: Duration,
    /// Which stage caps the throughput.
    pub bottleneck: Stage,
    /// SNIC CPU utilization at the operating point (0..1).
    pub snic_utilization: f64,
    /// Accelerator worker utilization at the operating point (0..1).
    pub accel_utilization: f64,
    /// Whether the candidate meets the goal: capacity covers the offered
    /// load (when one is given) and the predicted p99 is within the SLO.
    pub feasible: bool,
}

/// One point in the configuration space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Number of GPUs.
    pub gpus: usize,
    /// Mqueues (workers) per GPU.
    pub mqueues_per_gpu: usize,
    /// SNIC cores sharding the batched pipeline.
    pub snic_cores: usize,
    /// Batching policy.
    pub batch: BatchPolicy,
    /// Ring depth per mqueue.
    pub slots: usize,
    /// Whether the SNIC-resident hot-key cache is enabled.
    pub cache: bool,
}

/// Effective drain size of a batching policy at saturation. Adaptive
/// policies ramp to their max under load, so that is the steady-state
/// amortization the model charges.
fn effective_batch(policy: BatchPolicy) -> u32 {
    match policy {
        BatchPolicy::Unbatched => 1,
        BatchPolicy::Fixed(n) => n.max(1) as u32,
        BatchPolicy::Adaptive { max, .. } => max.max(1) as u32,
    }
}

/// Mean waiting time in an M/D/1 queue with utilization `rho` and
/// deterministic service time `service`: `Wq = rho / (2 (1 - rho)) * s`.
fn md1_wait(rho: f64, service: Duration) -> Duration {
    if rho <= 0.0 {
        return Duration::ZERO;
    }
    let rho = rho.min(0.95); // keep the estimate finite at saturation
    service.mul_f64(rho / (2.0 * (1.0 - rho)))
}

/// Predicts throughput and latency of `cand` serving `goal.app` on the
/// platform described by `profile`.
///
/// The capacity model mirrors the simulator's charging exactly:
///
/// * **SNIC CPU** — per message, the stack charges `udp_rx`; the
///   dispatcher charges `dispatch + mq_scan × Q` (unbatched) or an
///   amortized `(mq_scan_cycle(Q) + dispatch_batch(k)) / k` (batched,
///   drains run full at saturation); the stack charges `udp_tx`
///   (batched sends amortize via `udp_tx_batched`). The forwarder runs
///   one cycle per *mqueue*, so its achievable batch is set by the
///   per-queue arrival rate, not the policy limit — the model solves
///   that self-consistently by fixed-point iteration. Unbatched work
///   floats across the whole lane pool; batched pipeline work is pinned
///   to `snic_cores` lanes and dispatch only reaches the
///   `min(snic_cores, client_flows)` lanes the client shards map to.
/// * **Accelerator** — each of the `Q = gpus × mqueues_per_gpu` persistent
///   workers completes one request per `poll_detect + 2×local_io +
///   kernel_cost(app, 1)`.
/// * **Ring** — a slot is held from RDMA write to response collection:
///   verb latency in, worker service, detection delay (`mq_poll_rtt ×
///   Q / 2`), forward work and verb latency out. Little's law bounds
///   per-ring throughput at `slots / hold`.
/// * **Wire** — the server port serializes `payload + 46` framing bytes
///   per direction.
/// * **Admission** — an enabled control plane caps goodput at its
///   configured ceiling.
///
/// Latency is the unloaded request chain plus M/D/1 queueing delay at the
/// SNIC and the workers; p99 adds three times the mean queueing delay
/// (deterministic service leaves queueing as the dominant variance
/// source).
pub fn predict(
    profile: &dyn CostProfile,
    goal: &TuneGoal,
    space: &TuneSpace,
    cand: &Candidate,
) -> Prediction {
    let gpu = &space.gpu;
    let stack = StackProfile::of(profile.cpu().platform(), space.stack_kind);
    let q = (cand.gpus * cand.mqueues_per_gpu).max(1);
    let k = effective_batch(cand.batch);
    let scan = profile.mq_scan_cycle(q);
    let req_bytes = goal.app.request_bytes;
    let resp_bytes = goal.app.response_bytes;

    // --- SNIC-resident hot-key cache -----------------------------------
    // A fraction `h` of requests is answered at the dispatch stage
    // without touching the accelerator, its ring, or the forwarder, so
    // those stages only see the miss traffic: their *served* capacity is
    // the raw capacity divided by `(1 - h)`. Predicted latency stays the
    // miss path — conservative, since hits are strictly faster.
    let h = if cand.cache {
        space.cache_hit_rate.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let miss = 1.0 - h;
    let served = |raw: f64| {
        if miss <= 0.0 {
            f64::INFINITY
        } else {
            raw / miss
        }
    };

    // --- accelerator capacity ------------------------------------------
    // Every worker-side op runs on a threadblock whose wall time is
    // `work / relative_speed` (the K80 is slower than the reference).
    let worker_time = (gpu.poll_detect + gpu.local_io * 2 + profile.kernel_cost(&goal.app, 1))
        .div_f64(gpu.relative_speed);
    let accel_capacity = if cand.mqueues_per_gpu > gpu.max_threadblocks {
        0.0 // more persistent workers than the GPU has threadblock slots
    } else {
        served(q as f64 / worker_time.as_secs_f64())
    };

    // --- ring occupancy -------------------------------------------------
    let slot_in = req_bytes + SLOT_HEADER;
    let slot_out = resp_bytes + SLOT_HEADER;
    let detection = profile.mq_poll_rtt() * q as u32 / 2;
    let hold = profile.verb_cost(slot_in)
        + worker_time
        + detection
        + profile.forward_cost()
        + profile.verb_cost(slot_out);
    let ring_capacity = served((q * cand.slots) as f64 / hold.as_secs_f64());

    // --- wire -----------------------------------------------------------
    let wire_capacity =
        space.link_bandwidth_bps / (req_bytes.max(resp_bytes) + WIRE_OVERHEAD_BYTES) as f64;

    // --- admission ceiling ----------------------------------------------
    let admission_capacity = if space.control.enabled && space.control.admission_rate > 0.0 {
        space.control.admission_rate
    } else {
        f64::INFINITY
    };
    let non_cpu_cap = accel_capacity
        .min(ring_capacity)
        .min(wire_capacity)
        .min(admission_capacity);

    // --- per-message SNIC CPU cost -------------------------------------
    let rx = stack.udp_rx + stack.per_byte * req_bytes as u32;
    let tx_single = stack.udp_tx + stack.per_byte * resp_bytes as u32;
    let lanes = profile.pipeline_cores() as f64;
    let scan_s = scan.as_secs_f64();
    let (snic_capacity, total_cpu) = if k <= 1 {
        // Unbatched work floats across the whole lane pool; every message
        // pays rx, dispatch (where the cache is consulted) and tx, but
        // only misses pay the scans and the forward cycle.
        let total = rx
            + profile.dispatch_cost()
            + tx_single
            + (scan + profile.forward_cost() + scan).mul_f64(miss);
        (lanes / total.as_secs_f64(), total)
    } else {
        // The batched dispatcher drains staged requests up to the policy
        // limit each pass, so at saturation its cycles run full and the
        // scan amortizes over `k`. Dispatch shards by client key, so only
        // `min(snic_cores, client_flows)` lanes ever carry dispatch work.
        //
        // The forwarder is different: it runs one cycle per *mqueue* and
        // each cycle only drains the responses pending on that queue — at
        // a per-queue arrival rate of `λ / Q` that is usually far fewer
        // than the policy limit, so the per-cycle scan is barely
        // amortized. The achievable batch `k_f` depends on the arrival
        // rate, which depends on capacity, which depends on `k_f`; a few
        // fixed-point rounds converge (the map is monotone and bounded in
        // `[1, k]`), and an iteration count rather than an epsilon test
        // keeps the result bit-identical across runs.
        let pinned = cand.snic_cores.min(profile.pipeline_cores());
        let dispatch_cores = pinned.min(space.client_flows.max(1)) as f64;
        let pinned = pinned as f64;
        let dispatch_msg_s = (scan + profile.dispatch_batch(k)).as_secs_f64() / k as f64;
        let fwd_s = profile.forward_cost().as_secs_f64();
        let fwd_marg_s = profile.forward_marginal().as_secs_f64();
        let tx_s = tx_single.as_secs_f64();
        let tx_batched_s = stack.udp_tx_batched.as_secs_f64();
        let detect_s = detection.as_secs_f64();
        let mut kf = k as f64;
        let mut cap = 0.0;
        let mut total_s = f64::INFINITY;
        for _ in 0..8 {
            // Only the miss fraction reaches the forwarder — cache hits
            // are replied from the dispatch stage via the batched tx.
            let forward_msg_s = miss * (scan_s + fwd_s + (kf - 1.0) * fwd_marg_s) / kf;
            let tx_msg_s = (tx_s + (kf - 1.0) * tx_batched_s) / kf;
            total_s = rx.as_secs_f64() + dispatch_msg_s + forward_msg_s + tx_msg_s;
            // Three CPU constraints: the whole pool, the pinned pipeline
            // lanes (dispatch + forward both run there), and the subset
            // of lanes the client shards actually reach.
            cap = (lanes / total_s)
                .min(pinned / (dispatch_msg_s + forward_msg_s))
                .min(dispatch_cores / dispatch_msg_s);
            // The saturated *miss* rate each mqueue's forwarder sees.
            let lambda = cap.min(non_cpu_cap) * miss;
            let cycle_s = detect_s + scan_s + fwd_s + (kf - 1.0) * fwd_marg_s;
            kf = (lambda / q as f64 * cycle_s).clamp(1.0, k as f64);
        }
        (cap, Duration::from_secs_f64(total_s))
    };

    // Fixed evaluation order keeps the argmin (and therefore the whole
    // search trajectory) deterministic.
    let stages = [
        (Stage::SnicCpu, snic_capacity),
        (Stage::Accelerator, accel_capacity),
        (Stage::Ring, ring_capacity),
        (Stage::Wire, wire_capacity),
        (Stage::Admission, admission_capacity),
    ];
    let (bottleneck, capacity) = stages
        .iter()
        .copied()
        .reduce(|best, next| if next.1 < best.1 { next } else { best })
        .expect("stage list is non-empty");

    // --- latency at the operating point ---------------------------------
    let load = if goal.offered_load > 0.0 {
        goal.offered_load.min(capacity)
    } else {
        capacity * 0.85
    };
    let snic_utilization = if capacity > 0.0 {
        load * total_cpu.as_secs_f64() / lanes
    } else {
        1.0
    };
    let accel_utilization = if capacity > 0.0 {
        load * miss * worker_time.as_secs_f64() / q as f64
    } else {
        1.0
    };

    // Unloaded chain: client/wire overhead, rx, dispatch (first-of-batch
    // pays the full cost), RDMA in, worker service, detection, forward,
    // RDMA out, tx.
    let base = space.client_rtt_overhead
        + rx
        + profile.dispatch_cost()
        + scan
        + profile.verb_cost(slot_in)
        + worker_time
        + detection
        + profile.forward_cost()
        + scan
        + profile.verb_cost(slot_out)
        + tx_single;
    // A request in a filling batch waits for (k-1)/2 peers on average,
    // but never longer than one drain cycle — the dispatcher drains
    // whatever has arrived each pass rather than holding for a full
    // batch, so low loads see a cycle of staging delay, not k/λ.
    let batch_wait = if k > 1 && load > 0.0 {
        Duration::from_secs_f64((k as f64 - 1.0) / 2.0 / load).min(scan + profile.dispatch_cost())
    } else {
        Duration::ZERO
    };
    let queueing = md1_wait(snic_utilization, total_cpu) + md1_wait(accel_utilization, worker_time);
    let p50 = base + batch_wait + queueing;
    let p99 = base + batch_wait + queueing * 3;

    let feasible = capacity > 0.0
        && (goal.offered_load <= 0.0 || capacity >= goal.offered_load)
        && p99 <= goal.slo_p99;

    Prediction {
        throughput: capacity,
        p50,
        p99,
        bottleneck,
        snic_utilization,
        accel_utilization,
        feasible,
    }
}

/// The tuner's output: the chosen knob values, the prediction backing the
/// choice, and enough bookkeeping to audit the search.
#[derive(Clone, Debug, PartialEq)]
pub struct TunedConfig {
    /// The winning point in the space.
    pub candidate: Candidate,
    /// Slot size derived from the application's message sizes.
    pub slot_size: usize,
    /// I/O stack carried into the deployment.
    pub stack_kind: StackKind,
    /// Control plane carried into the deployment.
    pub control: ControlConfig,
    /// Hot-key cache configuration carried into the deployment (enabled
    /// iff the cache axis picked `true`).
    pub cache: CacheConfig,
    /// SNIC platform the profile maps to.
    pub platform: SnicPlatform,
    /// The model's verdict on the winning candidate.
    pub prediction: Prediction,
    /// How many candidate evaluations the search performed.
    pub evaluations: usize,
}

impl TunedConfig {
    /// Materializes the tuned knobs as a [`DeployConfig`] ready for
    /// [`DeployConfig::deploy`]. The returned configuration always passes
    /// the same [`Validate`] checks the builder runs.
    ///
    /// Which payloads are GETs is application knowledge the tuner does
    /// not have, so the caller supplies the protocol lens here: when the
    /// cache axis picked `true` and a `cache_protocol` is given, the
    /// deployment carries the tuned [`CacheConfig`] with the protocol
    /// attached. Without a protocol the cache is emitted disabled — the
    /// recommendation stays available as [`TunedConfig::cache`] — so the
    /// config never pairs an enabled cache with a missing protocol (the
    /// builder rejects that combination).
    pub fn deploy_config(&self, cache_protocol: Option<Rc<dyn CacheProtocol>>) -> DeployConfig {
        let (cache, cache_protocol) = match cache_protocol {
            Some(p) if self.cache.enabled => (self.cache, Some(p)),
            _ => (CacheConfig::disabled(), None),
        };
        DeployConfig {
            platform: self.platform,
            mqueues_per_gpu: self.candidate.mqueues_per_gpu,
            mq: MqueueConfig {
                slots: self.candidate.slots,
                slot_size: self.slot_size,
                ..MqueueConfig::default()
            },
            stack_kind: self.stack_kind,
            pipeline: PipelineConfig {
                snic_cores: self.candidate.snic_cores,
                batch: self.candidate.batch,
            },
            control: self.control,
            cache,
            cache_protocol,
            ..DeployConfig::default()
        }
    }
}

/// Why [`tune`] could not produce a deployable configuration.
#[derive(Clone, Debug)]
pub enum TuneError {
    /// An axis of the [`TuneSpace`] has no values.
    EmptySpace {
        /// Name of the empty axis.
        axis: &'static str,
    },
    /// No point in the space meets the goal; `best` is the closest miss
    /// (highest-scoring infeasible point) for diagnostics.
    Infeasible {
        /// The best point found, for diagnostics.
        best: Box<TunedConfig>,
    },
    /// The winning candidate failed deployment validation — a tuner bug
    /// or a hand-built [`TuneSpace`] with out-of-range values.
    Rejected(lynx_core::Error),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::EmptySpace { axis } => {
                write!(f, "tune space axis `{axis}` has no values")
            }
            TuneError::Infeasible { best } => write!(
                f,
                "no configuration meets the goal; best miss: {:?} predicting {:.0} req/s at p99 {:?}",
                best.candidate, best.prediction.throughput, best.prediction.p99
            ),
            TuneError::Rejected(e) => write!(f, "tuned configuration rejected: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Abstract resource cost used to break throughput ties: GPUs dominate,
/// then dedicated SNIC cores, then total workers, then ring memory.
fn resource_cost(c: &Candidate) -> i64 {
    (c.gpus as i64) * 100_000
        + (c.snic_cores as i64) * 1_000
        + (c.gpus * c.mqueues_per_gpu) as i64 * 10
        + (c.slots as i64)
        // SNIC memory is cheap but not free: a cache that buys no
        // throughput loses the tie to cache-off.
        + (c.cache as i64)
}

/// Lexicographic score: larger is better. Throughput is quantized to
/// 1 Kreq/s so floating-point dust cannot flip a comparison between runs.
fn score(goal: &TuneGoal, cand: &Candidate, pred: &Prediction) -> (bool, i64, i64, i64) {
    let tput_q = (pred.throughput / 1_000.0).round() as i64;
    let p99 = -(pred.p99.as_nanos().min(i64::MAX as u128) as i64);
    let cost = -resource_cost(cand);
    if goal.offered_load > 0.0 {
        // Provisioning: cheapest feasible point, then best latency, then
        // throughput headroom.
        (pred.feasible, cost, p99, tput_q)
    } else {
        // Maximizing: fastest feasible point, then cheapest, then latency.
        (pred.feasible, tput_q, cost, p99)
    }
}

/// Searches `space` by deterministic coordinate descent and returns the
/// best deployable configuration for `goal` on `profile`.
///
/// The search starts at the first value of every axis and repeatedly
/// sweeps the axes in declaration order, moving an axis only when a
/// strictly better score appears (ties keep the incumbent, so the walk is
/// deterministic). `snic_cores` and `batch` are swept as one joint axis:
/// core sharding only pays off together with batching, so independent
/// sweeps would park both at their starting values. It stops at a fixed
/// point or after eight passes. The winning candidate is validated with
/// the same [`Validate`] impls the server builder runs before it is
/// returned.
pub fn tune(
    profile: &dyn CostProfile,
    goal: &TuneGoal,
    space: &TuneSpace,
) -> Result<TunedConfig, TuneError> {
    space.check_nonempty()?;

    // snic_cores and batch are coupled (sharding is inert without
    // batching and vice versa), so they form one joint axis.
    let mut pipe = Vec::with_capacity(space.batch.len() * space.snic_cores.len());
    for &batch in &space.batch {
        for &cores in &space.snic_cores {
            pipe.push((cores, batch));
        }
    }
    let make = |ix: [usize; 5]| Candidate {
        gpus: space.gpus[ix[0]],
        mqueues_per_gpu: space.mqueues_per_gpu[ix[1]],
        snic_cores: pipe[ix[2]].0,
        batch: pipe[ix[2]].1,
        slots: space.slots[ix[3]],
        cache: space.cache[ix[4]],
    };
    let axis_len = [
        space.gpus.len(),
        space.mqueues_per_gpu.len(),
        pipe.len(),
        space.slots.len(),
        space.cache.len(),
    ];

    let mut evaluations = 0usize;
    let mut eval = |ix: [usize; 5]| {
        evaluations += 1;
        let cand = make(ix);
        let pred = predict(profile, goal, space, &cand);
        let s = score(goal, &cand, &pred);
        (cand, pred, s)
    };

    let mut ix = [0usize; 5];
    let (mut best_cand, mut best_pred, mut best_score) = eval(ix);
    for _pass in 0..8 {
        let mut moved = false;
        for axis in 0..5 {
            for j in 0..axis_len[axis] {
                if j == ix[axis] {
                    continue;
                }
                let mut trial = ix;
                trial[axis] = j;
                let (cand, pred, s) = eval(trial);
                if s > best_score {
                    best_cand = cand;
                    best_pred = pred;
                    best_score = s;
                    ix = trial;
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
    }

    let slot_size = (goal.app.request_bytes.max(goal.app.response_bytes) + SLOT_HEADER)
        .next_power_of_two()
        .max(64);
    let platform = match profile.cpu() {
        CpuKind::ArmA72 => SnicPlatform::Bluefield,
        _ => SnicPlatform::HostCores(profile.pipeline_cores()),
    };
    let tuned = TunedConfig {
        candidate: best_cand,
        slot_size,
        stack_kind: space.stack_kind,
        control: space.control,
        cache: if best_cand.cache {
            CacheConfig {
                enabled: true,
                bytes_per_lane: space.cache_bytes_per_lane,
                ..CacheConfig::disabled()
            }
        } else {
            CacheConfig::disabled()
        },
        platform,
        prediction: best_pred,
        evaluations,
    };

    if !tuned.prediction.feasible {
        return Err(TuneError::Infeasible {
            best: Box::new(tuned),
        });
    }

    // The emitted deployment must pass exactly the checks the builder
    // runs; reject here rather than at deploy time. The recommended cache
    // config is validated directly — deploy_config(None) emits it
    // disabled until the caller attaches a protocol.
    let dc = tuned.deploy_config(None);
    dc.pipeline
        .check(profile.pipeline_cores())
        .and_then(|()| dc.mq.validate())
        .and_then(|()| dc.control.validate())
        .and_then(|()| tuned.cache.validate())
        .and_then(|()| dc.rmq.validate())
        .map_err(TuneError::Rejected)?;

    Ok(tuned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynx_device::BluefieldProfile;

    fn echo_goal() -> TuneGoal {
        TuneGoal::maximize(
            AppProfile::delay_echo(Duration::from_micros(20), 64),
            Duration::from_millis(2),
        )
    }

    #[test]
    fn batching_beats_unbatched_on_the_arm_cores() {
        let space = TuneSpace::bluefield();
        let goal = echo_goal();
        let base = Candidate {
            gpus: 2,
            mqueues_per_gpu: 15,
            snic_cores: 4,
            batch: BatchPolicy::Unbatched,
            slots: 32,
            cache: false,
        };
        let batched = Candidate {
            batch: BatchPolicy::Fixed(16),
            ..base
        };
        let p0 = predict(&BluefieldProfile, &goal, &space, &base);
        let p1 = predict(&BluefieldProfile, &goal, &space, &batched);
        // Dispatch drains run full so the gain there is ~k-fold, but the
        // per-mqueue forwarder only amortizes as far as its per-queue
        // arrival rate allows, so the end-to-end win is well under k.
        assert!(
            p1.throughput > p0.throughput * 1.25,
            "expected batching to amortize the ARM dispatch cost: {} vs {}",
            p1.throughput,
            p0.throughput
        );
    }

    #[test]
    fn more_mqueues_raise_scan_cost() {
        let space = TuneSpace::bluefield();
        let goal = echo_goal();
        let small = Candidate {
            gpus: 1,
            mqueues_per_gpu: 60,
            snic_cores: 1,
            batch: BatchPolicy::Unbatched,
            slots: 32,
            cache: false,
        };
        let large = Candidate { gpus: 4, ..small };
        let p_small = predict(&BluefieldProfile, &goal, &space, &small);
        let p_large = predict(&BluefieldProfile, &goal, &space, &large);
        // 240 mqueues quadruple the scan term, so per-message CPU rises
        // and SNIC-bound throughput falls.
        assert_eq!(p_small.bottleneck, Stage::SnicCpu);
        assert!(p_large.throughput < p_small.throughput);
    }

    #[test]
    fn slow_kernels_move_the_bottleneck_to_the_accelerator() {
        let space = TuneSpace::bluefield();
        let goal = TuneGoal::maximize(
            AppProfile::delay_echo(Duration::from_millis(2), 64),
            Duration::from_millis(50),
        );
        let cand = Candidate {
            gpus: 1,
            mqueues_per_gpu: 1,
            snic_cores: 1,
            batch: BatchPolicy::Unbatched,
            slots: 16,
            cache: false,
        };
        let p = predict(&BluefieldProfile, &goal, &space, &cand);
        assert_eq!(p.bottleneck, Stage::Accelerator);
        // One worker at a 2 ms kernel: ~500 req/s.
        assert!(p.throughput < 600.0, "got {}", p.throughput);
    }

    #[test]
    fn cache_lifts_an_accelerator_bound_deployment() {
        let mut space = TuneSpace::bluefield();
        space.cache_hit_rate = 0.9;
        // A slow kernel leaves the accelerator as the bottleneck; a 90%
        // hit rate means only 10% of traffic reaches it, so served
        // throughput should rise close to 10x.
        let goal = TuneGoal::maximize(
            AppProfile::delay_echo(Duration::from_millis(2), 64),
            Duration::from_millis(50),
        );
        let base = Candidate {
            gpus: 1,
            mqueues_per_gpu: 1,
            snic_cores: 1,
            batch: BatchPolicy::Unbatched,
            slots: 16,
            cache: false,
        };
        let cached = Candidate {
            cache: true,
            ..base
        };
        let p0 = predict(&BluefieldProfile, &goal, &space, &base);
        let p1 = predict(&BluefieldProfile, &goal, &space, &cached);
        assert!(
            p1.throughput > p0.throughput * 5.0,
            "expected the cache to absorb 90% of the load: {} vs {}",
            p1.throughput,
            p0.throughput
        );
    }

    #[test]
    fn tune_picks_the_cache_when_the_hit_rate_is_high() {
        let mut space = TuneSpace::bluefield();
        space.cache = vec![false, true];
        space.cache_hit_rate = 0.95;
        let goal = TuneGoal::maximize(
            AppProfile::delay_echo(Duration::from_millis(2), 64),
            Duration::from_millis(50),
        );
        let tuned = tune(&BluefieldProfile, &goal, &space).expect("tunable");
        assert!(tuned.candidate.cache, "got {:?}", tuned.candidate);
        assert!(tuned.cache.enabled);
        assert_eq!(tuned.cache.bytes_per_lane, space.cache_bytes_per_lane);
        // Without a protocol the emitted config must keep the cache off
        // (enabled-without-protocol is rejected by the builder)…
        let bare = tuned.deploy_config(None);
        assert!(!bare.cache.enabled);
        assert!(bare.cache_protocol.is_none());
        assert!(bare.cache.validate().is_ok());
        // …and with one it carries the tuned cache, protocol attached.
        let protocol: Rc<dyn CacheProtocol> = Rc::new(lynx_core::FnCacheProtocol::new(
            |_| lynx_core::CacheOp::Other,
            |_| false,
        ));
        let dc = tuned.deploy_config(Some(protocol));
        assert!(dc.cache.enabled);
        assert_eq!(dc.cache, tuned.cache);
        assert!(dc.cache_protocol.is_some());
        assert!(dc.cache.validate().is_ok());
    }

    #[test]
    fn zero_hit_rate_keeps_the_cache_off() {
        let mut space = TuneSpace::bluefield();
        space.cache = vec![false, true];
        // cache_hit_rate stays 0.0: enabling the cache buys nothing and
        // costs a resource tie-break point.
        let tuned = tune(&BluefieldProfile, &echo_goal(), &space).expect("tunable");
        assert!(!tuned.candidate.cache);
        assert!(!tuned.cache.enabled);
    }

    #[test]
    fn tune_emits_a_valid_feasible_config() {
        let tuned = tune(&BluefieldProfile, &echo_goal(), &TuneSpace::bluefield())
            .expect("echo at 20us is tunable on BlueField");
        assert!(tuned.prediction.feasible);
        assert!(tuned.evaluations > 0);
        let dc = tuned.deploy_config(None);
        assert!(dc.pipeline.check(7).is_ok());
        assert!(dc.mq.validate().is_ok());
        // The tuner should discover that batching wins on the ARM cores.
        assert!(
            tuned.candidate.batch != BatchPolicy::Unbatched,
            "expected a batched policy, got {:?}",
            tuned.candidate.batch
        );
    }

    #[test]
    fn provisioning_prefers_fewer_resources() {
        let goal = TuneGoal::provision(
            AppProfile::delay_echo(Duration::from_micros(20), 64),
            50_000.0,
            Duration::from_millis(2),
        );
        let tuned = tune(&BluefieldProfile, &goal, &TuneSpace::bluefield())
            .expect("50 Kreq/s is easily provisionable");
        let max = tune(&BluefieldProfile, &echo_goal(), &TuneSpace::bluefield()).unwrap();
        assert!(
            resource_cost(&tuned.candidate) <= resource_cost(&max.candidate),
            "provisioning picked {:?}, maximizing picked {:?}",
            tuned.candidate,
            max.candidate
        );
        assert!(tuned.prediction.throughput >= 50_000.0);
    }

    #[test]
    fn impossible_slo_reports_the_best_miss() {
        let goal = TuneGoal::maximize(
            AppProfile::delay_echo(Duration::from_micros(20), 64),
            Duration::from_nanos(1),
        );
        match tune(&BluefieldProfile, &goal, &TuneSpace::bluefield()) {
            Err(TuneError::Infeasible { best }) => {
                assert!(best.prediction.p99 > Duration::from_nanos(1));
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn empty_axis_is_a_typed_error() {
        let mut space = TuneSpace::bluefield();
        space.slots.clear();
        match tune(&BluefieldProfile, &echo_goal(), &space) {
            Err(TuneError::EmptySpace { axis: "slots" }) => {}
            other => panic!("expected EmptySpace, got {other:?}"),
        }
    }

    #[test]
    fn tuning_is_deterministic() {
        let a = tune(&BluefieldProfile, &echo_goal(), &TuneSpace::bluefield()).unwrap();
        let b = tune(&BluefieldProfile, &echo_goal(), &TuneSpace::bluefield()).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
