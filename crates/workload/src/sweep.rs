//! Load–latency sweeps: offered-rate curves like the paper's Figure 9
//! latency/throughput presentation.

use std::fmt;
use std::time::Duration;

use crate::RunSummary;

/// One point of a load–latency curve.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Offered load in requests per second.
    pub offered: f64,
    /// Achieved goodput in responses per second.
    pub achieved: f64,
    /// Median latency.
    pub p50: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
}

/// A measured load–latency curve.
///
/// Built by [`sweep`], which runs a fresh, independent simulation per
/// offered rate (simulations are cheap and deterministic, so isolation
/// beats warm-state reuse).
#[derive(Clone, Default)]
pub struct Sweep {
    points: Vec<SweepPoint>,
}

impl fmt::Debug for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sweep")
            .field("points", &self.points.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl Sweep {
    /// The measured points, in offered-rate order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The highest achieved goodput across the curve (the saturation
    /// capacity).
    pub fn capacity(&self) -> f64 {
        self.points.iter().map(|p| p.achieved).fold(0.0, f64::max)
    }

    /// The highest achieved goodput whose p99 stays at or below `slo` —
    /// the "latency-optimized" operating point of Figure 9. `None` if no
    /// point meets the target.
    pub fn capacity_under_slo(&self, slo: Duration) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.p99 <= slo)
            .map(|p| p.achieved)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// The offered rate at which p99 first exceeds `factor` times the
    /// lowest-load p99 (the knee of the curve).
    pub fn knee(&self, factor: f64) -> Option<f64> {
        let base = self.points.first()?.p99;
        self.points
            .iter()
            .find(|p| p.p99 > base.mul_f64(factor))
            .map(|p| p.offered)
    }
}

/// Runs `measure(offered_rate)` for every rate and assembles the curve.
///
/// The measurement closure builds its own simulation so each point is
/// independent and reproducible.
///
/// # Example
///
/// ```
/// use lynx_workload::sweep::{sweep, Sweep};
/// use lynx_workload::RunSummary;
/// use lynx_sim::Histogram;
/// use std::time::Duration;
///
/// // A fake server that saturates at 10K/s with rising latency.
/// let curve: Sweep = sweep(&[1e3, 5e3, 20e3], |rate| {
///     let achieved = rate.min(10e3);
///     let mut latency = Histogram::new();
///     latency.record(Duration::from_micros(if rate > 10e3 { 900 } else { 90 }));
///     RunSummary {
///         throughput: achieved,
///         sent: rate as u64,
///         received: achieved as u64,
///         invalid: 0,
///         rejected: 0,
///         latency,
///     }
/// });
/// assert_eq!(curve.capacity(), 10e3);
/// assert!(curve.knee(3.0).is_some());
/// ```
pub fn sweep(rates: &[f64], mut measure: impl FnMut(f64) -> RunSummary) -> Sweep {
    let mut points = Vec::with_capacity(rates.len());
    for &offered in rates {
        assert!(offered.is_finite() && offered > 0.0, "invalid sweep rate");
        let summary = measure(offered);
        points.push(SweepPoint {
            offered,
            achieved: summary.throughput,
            p50: summary.latency.percentile(50.0),
            p99: summary.latency.percentile(99.0),
        });
    }
    Sweep { points }
}

/// Binary-searches the highest offered rate in `[lo, hi]` (requests/s)
/// whose measured p99 stays within `slo`, to a relative resolution of
/// `tol` (e.g. `0.05` = 5%).
///
/// A run that served nothing (`received == 0`) counts as missing the SLO:
/// an empty latency histogram means the server shed or dropped the whole
/// window, not that it was infinitely fast. Returns `None` when even `lo`
/// misses the SLO, and `hi` itself when the whole range meets it.
///
/// Like [`sweep`], the `measure` closure should build a fresh simulation
/// per call so every probe is independent and deterministic.
///
/// # Panics
///
/// Panics unless `0 < lo <= hi` (both finite) and `0 < tol < 1`.
pub fn find_max_load(
    lo: f64,
    hi: f64,
    slo: Duration,
    tol: f64,
    mut measure: impl FnMut(f64) -> RunSummary,
) -> Option<f64> {
    assert!(
        lo > 0.0 && hi >= lo && lo.is_finite() && hi.is_finite(),
        "invalid load range"
    );
    assert!(tol > 0.0 && tol < 1.0, "invalid tolerance");
    let mut meets = |rate: f64| {
        let s = measure(rate);
        s.received > 0 && s.latency.percentile(99.0) <= slo
    };
    if !meets(lo) {
        return None;
    }
    if meets(hi) {
        return Some(hi);
    }
    let (mut good, mut bad) = (lo, hi);
    while bad - good > good * tol {
        let mid = (good + bad) / 2.0;
        if meets(mid) {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Some(good)
}

/// Geometric rate ladder from `lo` to `hi` with `n` points (inclusive).
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and `n >= 2`.
pub fn geometric_rates(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2, "invalid rate ladder");
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynx_sim::Histogram;

    fn fake_summary(tput: f64, p99_us: u64) -> RunSummary {
        let mut latency = Histogram::new();
        for _ in 0..100 {
            latency.record(Duration::from_micros(p99_us / 2));
        }
        latency.record(Duration::from_micros(p99_us));
        RunSummary {
            throughput: tput,
            sent: tput as u64,
            received: tput as u64,
            invalid: 0,
            rejected: 0,
            latency,
        }
    }

    #[test]
    fn capacity_is_the_max_achieved() {
        let curve = sweep(&[1e3, 1e4, 1e5], |r| fake_summary(r.min(5e4), 100));
        assert_eq!(curve.capacity(), 5e4);
        assert_eq!(curve.points().len(), 3);
    }

    #[test]
    fn slo_capacity_excludes_slow_points() {
        let curve = sweep(&[1e3, 1e4, 1e5], |r| {
            fake_summary(r.min(5e4), if r > 2e4 { 1_000 } else { 50 })
        });
        let cap = curve
            .capacity_under_slo(Duration::from_micros(200))
            .unwrap();
        assert_eq!(cap, 1e4);
        assert_eq!(curve.capacity_under_slo(Duration::from_nanos(1)), None);
    }

    #[test]
    fn knee_detects_latency_blowup() {
        let curve = sweep(&[1e3, 2e3, 4e3, 8e3], |r| {
            fake_summary(r, if r >= 4e3 { 2_000 } else { 100 })
        });
        assert_eq!(curve.knee(3.0), Some(4e3));
        assert_eq!(curve.knee(100.0), None);
    }

    /// A run in which every request was shed: nothing served, empty
    /// latency histogram.
    fn shed_summary(offered: f64) -> RunSummary {
        RunSummary {
            throughput: 0.0,
            sent: offered as u64,
            received: 0,
            invalid: 0,
            rejected: offered as u64,
            latency: Histogram::new(),
        }
    }

    #[test]
    fn find_max_load_converges_to_the_capacity_knee() {
        // SLO met strictly below 10 K/s.
        let knee = 10_000.0;
        let max = find_max_load(1e3, 1e5, Duration::from_micros(200), 0.01, |r| {
            fake_summary(r, if r < knee { 100 } else { 1_000 })
        })
        .unwrap();
        assert!(max < knee, "max={max} must miss the SLO side");
        assert!(max > knee * 0.95, "max={max} within 5% of the knee");
    }

    #[test]
    fn find_max_load_saturated_sweep_never_meets_slo() {
        // Even the lowest rate misses the SLO: no operating point exists.
        let max = find_max_load(1e3, 1e5, Duration::from_micros(50), 0.05, |r| {
            fake_summary(r, 1_000)
        });
        assert_eq!(max, None);
    }

    #[test]
    fn find_max_load_whole_range_meets_slo() {
        let max = find_max_load(1e3, 1e5, Duration::from_millis(10), 0.05, |r| {
            fake_summary(r, 100)
        });
        assert_eq!(max, Some(1e5));
    }

    #[test]
    fn find_max_load_treats_fully_shed_runs_as_misses() {
        // Past 5 K/s the server sheds everything: the empty histogram
        // must read as an SLO miss, not a perfect run.
        let max = find_max_load(1e3, 1e5, Duration::from_micros(200), 0.01, |r| {
            if r >= 5e3 {
                shed_summary(r)
            } else {
                fake_summary(r, 100)
            }
        })
        .unwrap();
        assert!(max < 5e3 && max > 4.7e3, "max={max}");
        // ... and a range that is shed from the start finds nothing.
        let none = find_max_load(1e3, 1e5, Duration::from_micros(200), 0.05, shed_summary);
        assert_eq!(none, None);
    }

    #[test]
    #[should_panic(expected = "invalid tolerance")]
    fn find_max_load_rejects_bad_tolerance() {
        let _ = find_max_load(1.0, 2.0, Duration::from_micros(1), 0.0, shed_summary);
    }

    #[test]
    fn geometric_ladder_spans_range() {
        let rates = geometric_rates(1e3, 1e6, 4);
        assert_eq!(rates.len(), 4);
        assert!((rates[0] - 1e3).abs() < 1e-6);
        assert!((rates[3] - 1e6).abs() / 1e6 < 1e-9);
        assert!(rates.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "invalid rate ladder")]
    fn bad_ladder_rejected() {
        let _ = geometric_rates(10.0, 5.0, 3);
    }
}
