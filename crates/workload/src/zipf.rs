//! Shared Zipf key generation for skewed key-value workloads.
//!
//! The fig9 memcached comparison (and, more generally, any load generator
//! driving `lynx-apps::kv`) needs a *deterministic, seekable* stream of
//! keys following a Zipf popularity distribution: request `i` of a run
//! must map to the same key on every execution, regardless of how many
//! clients interleave or how the simulation is sharded. Threading a
//! stateful RNG through the client callbacks would break that — the
//! callback order depends on the deployment — so [`ZipfKeyGen`] is
//! **stateless**: the key of request `i` is a pure function of
//! `(seed, i)`. A SplitMix64-style hash of the sequence number yields a
//! uniform variate, and [`lynx_sim::rng::Zipf::sample_u`] maps it through
//! the inverse CDF to a popularity rank.

use lynx_sim::rng::Zipf;

/// Deterministic, seekable Zipf-distributed key generator.
///
/// ```
/// use lynx_workload::zipf::ZipfKeyGen;
///
/// let keys = ZipfKeyGen::new(10_000, 0.99, 42);
/// // Request 7 always maps to the same key, on every run and shard.
/// assert_eq!(keys.key(7), keys.key(7));
/// // Rank 0 is the hottest key.
/// assert_eq!(keys.key_of_rank(0), "key-000000");
/// ```
#[derive(Clone, Debug)]
pub struct ZipfKeyGen {
    zipf: Zipf,
    seed: u64,
}

/// SplitMix64 finalizer: a well-mixed 64-bit hash of the input.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ZipfKeyGen {
    /// Builds a generator over `n` keys with skew `theta` (`0.99` is the
    /// classic YCSB/memcached hot-key skew; `0.0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite (the
    /// [`Zipf`] constructor's contract).
    pub fn new(n: usize, theta: f64, seed: u64) -> ZipfKeyGen {
        ZipfKeyGen {
            zipf: Zipf::new(n, theta),
            seed,
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.zipf.len()
    }

    /// Always `false` — the constructor requires at least one key.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Popularity rank of request `seq` (rank 0 is the hottest key).
    /// Pure in `(seed, seq)`: callers may evaluate any subsequence in any
    /// order and still agree with a run that walked `0..n` linearly.
    pub fn rank(&self, seq: u64) -> usize {
        // Map the 53 high bits of the hash into [0, 1).
        let u = (mix(self.seed ^ mix(seq)) >> 11) as f64 / (1u64 << 53) as f64;
        self.zipf.sample_u(u)
    }

    /// The key string for request `seq`.
    pub fn key(&self, seq: u64) -> String {
        self.key_of_rank(self.rank(seq))
    }

    /// The key string of popularity rank `rank` (stable across runs:
    /// `key-000000` is always the hottest key).
    pub fn key_of_rank(&self, rank: usize) -> String {
        format!("key-{rank:06}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = ZipfKeyGen::new(1000, 0.99, 7);
        let b = ZipfKeyGen::new(1000, 0.99, 7);
        for seq in 0..4096 {
            assert_eq!(a.key(seq), b.key(seq));
        }
    }

    #[test]
    fn stream_is_seekable() {
        // Evaluating out of order or twice gives the same answer as a
        // linear walk — the property the sharded harness relies on.
        let g = ZipfKeyGen::new(1000, 0.99, 7);
        let linear: Vec<_> = (0..256).map(|s| g.rank(s)).collect();
        for seq in (0..256).rev() {
            assert_eq!(g.rank(seq), linear[seq as usize]);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ZipfKeyGen::new(1000, 0.99, 1);
        let b = ZipfKeyGen::new(1000, 0.99, 2);
        let same = (0..512).filter(|&s| a.rank(s) == b.rank(s)).count();
        // Zipf skew makes collisions on hot ranks common, but the streams
        // must not be identical.
        assert!(same < 512, "seed must change the stream");
    }

    #[test]
    fn skew_concentrates_on_hot_keys() {
        let g = ZipfKeyGen::new(10_000, 0.99, 42);
        let n = 20_000u64;
        let hot = (0..n).filter(|&s| g.rank(s) < 100).count() as f64;
        // At theta=0.99 over 10k keys, the top-100 ranks carry roughly
        // half the probability mass.
        assert!(
            hot / (n as f64) > 0.4,
            "top-100 share too small: {}",
            hot / (n as f64)
        );
        let uniform = ZipfKeyGen::new(10_000, 0.0, 42);
        let hot_u = (0..n).filter(|&s| uniform.rank(s) < 100).count() as f64;
        assert!(
            hot_u / (n as f64) < 0.05,
            "uniform top-100 share too big: {}",
            hot_u / (n as f64)
        );
    }

    #[test]
    fn ranks_stay_in_range() {
        let g = ZipfKeyGen::new(17, 1.2, 3);
        for seq in 0..10_000 {
            assert!(g.rank(seq) < 17);
        }
    }
}
