//! Fixed-width tables and CSV output for the bench harnesses.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use lynx_sim::Telemetry;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use lynx_workload::report::Table;
///
/// let mut t = Table::new(&["design", "Kreq/s"]);
/// t.row(&["Lynx on Bluefield", "3.50"]);
/// t.row(&["host-centric", "2.80"]);
/// let text = t.render();
/// assert!(text.contains("Lynx on Bluefield"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a ratio like "4.4x".
pub fn ratio(value: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}x", value / baseline)
    }
}

/// Formats a throughput in adaptive units (req/s, Kreq/s, Mreq/s).
pub fn tput(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2} Mreq/s", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} Kreq/s", v / 1e3)
    } else {
        format!("{v:.0} req/s")
    }
}

/// Formats microseconds.
pub fn us(v: f64) -> String {
    format!("{v:.0} us")
}

/// Renders a telemetry handle's counters and gauges as a two-column table
/// (`counter`, `value`), counters first, then gauges — both name-sorted so
/// the rendering is deterministic across same-seed runs.
pub fn counters_table(telemetry: &Telemetry) -> Table {
    let mut t = Table::new(&["counter", "value"]);
    for (name, value) in telemetry.counters() {
        t.row(&[name, value.to_string()]);
    }
    for (name, value) in telemetry.gauges() {
        t.row(&[name, format!("{value:.4}")]);
    }
    t
}

/// Writes the full set of telemetry artifacts into `dir`:
///
/// * `trace.jsonl` — one structured event per line,
/// * `trace.json` — Chrome `trace_event` format (load in `chrome://tracing`
///   or <https://ui.perfetto.dev>),
/// * `counters.csv` — final counter and gauge snapshot.
///
/// Creates `dir` (and parents) if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_telemetry_artifacts(telemetry: &Telemetry, dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    telemetry.write_jsonl(dir.join("trace.jsonl"))?;
    telemetry.write_chrome_trace(dir.join("trace.json"))?;
    fs::write(dir.join("counters.csv"), telemetry.counters_csv())
}

/// Prints a section banner for a bench harness.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len() + 8);
    println!("\n{line}\n=== {title} ===\n{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["a", "longer"]);
        t.row(&["xxxx", "1"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxx  "));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(&["x"]);
        t.row(&["a,b"]);
        t.row(&["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new(&["a", "b"]).row(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(44.0, 10.0), "4.40x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
        assert_eq!(tput(3_500.0), "3.5 Kreq/s");
        assert_eq!(tput(7_400_000.0), "7.40 Mreq/s");
        assert_eq!(tput(900.0), "900 req/s");
        assert_eq!(us(300.4), "300 us");
    }

    #[test]
    fn counters_table_lists_counters_then_gauges() {
        let t = Telemetry::new();
        t.count("b.second", 2);
        t.count("a.first", 1);
        t.gauge("z.gauge", 0.5);
        let table = counters_table(&t);
        let text = table.render();
        let a = text.find("a.first").unwrap();
        let b = text.find("b.second").unwrap();
        let z = text.find("z.gauge").unwrap();
        assert!(a < b && b < z);
        assert!(text.contains("0.5000"));
    }

    #[test]
    fn telemetry_artifacts_written() {
        let t = Telemetry::new();
        t.count("x", 1);
        let dir = std::env::temp_dir().join("lynx-telemetry-artifacts-test");
        write_telemetry_artifacts(&t, &dir).unwrap();
        for f in ["trace.jsonl", "trace.json", "counters.csv"] {
            assert!(dir.join(f).exists(), "{f} missing");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_writes_to_disk() {
        let mut t = Table::new(&["h"]);
        t.row(&["v"]);
        let path = std::env::temp_dir().join("lynx-report-test/out.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "h\nv\n");
        let _ = std::fs::remove_file(path);
    }
}
