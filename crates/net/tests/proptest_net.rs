//! Property-based tests of the network and protocol stacks.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use lynx_net::{
    Datagram, HostStack, LinkSpec, Network, Platform, SockAddr, StackKind, StackProfile,
};
use lynx_sim::{MultiServer, Sim};

fn stack_pair() -> (Sim, Network, HostStack, HostStack) {
    let sim = Sim::new(0);
    let net = Network::new();
    let a = net.add_host("a", LinkSpec::gbps40());
    let b = net.add_host("b", LinkSpec::gbps40());
    let sa = HostStack::new(
        &net,
        a,
        MultiServer::new(2, 1.0),
        StackProfile::of(Platform::Xeon, StackKind::Vma),
    );
    let sb = HostStack::new(
        &net,
        b,
        MultiServer::new(2, 1.0),
        StackProfile::of(Platform::Xeon, StackKind::Vma),
    );
    (sim, net, sa, sb)
}

proptest! {
    /// Every UDP datagram sent arrives exactly once, in order, unmodified.
    #[test]
    fn udp_delivery_exactly_once_in_order(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256), 1..50)
    ) {
        let (mut sim, _net, client, server) = stack_pair();
        let received = Rc::new(RefCell::new(Vec::new()));
        let r = Rc::clone(&received);
        server.bind_udp(9, move |_sim, d| r.borrow_mut().push(d.payload));
        let dst = SockAddr::new(server.host(), 9);
        for p in &payloads {
            client.send_udp(&mut sim, 5, dst, p.clone());
        }
        sim.run();
        prop_assert_eq!(&*received.borrow(), &payloads);
    }

    /// TCP streams deliver all messages in order on each connection even
    /// when several connections interleave.
    #[test]
    fn tcp_per_connection_ordering(
        msgs_a in proptest::collection::vec(1u8..255, 1..30),
        msgs_b in proptest::collection::vec(1u8..255, 1..30),
    ) {
        let (mut sim, _net, client, server) = stack_pair();
        let received: Rc<RefCell<std::collections::HashMap<lynx_net::ConnId, Vec<u8>>>> =
            Rc::new(RefCell::new(std::collections::HashMap::new()));
        let r = Rc::clone(&received);
        server.listen_tcp(80, move |_sim, conn, payload| {
            r.borrow_mut().entry(conn).or_default().push(payload[0]);
        });
        let dst = SockAddr::new(server.host(), 80);
        let conns = Rc::new(RefCell::new(Vec::new()));
        for msgs in [msgs_a.clone(), msgs_b.clone()] {
            let client2 = client.clone();
            let conns2 = Rc::clone(&conns);
            client.connect_tcp(
                &mut sim,
                dst,
                |_, _, _| {},
                move |sim, conn| {
                    conns2.borrow_mut().push(conn);
                    for m in msgs {
                        client2.send_tcp(sim, conn, vec![m]);
                    }
                },
            );
        }
        sim.run();
        let received = received.borrow();
        let conns = conns.borrow();
        prop_assert_eq!(received.len(), 2);
        let got_a = &received[&conns[0]];
        let got_b = &received[&conns[1]];
        prop_assert_eq!(got_a, &msgs_a);
        prop_assert_eq!(got_b, &msgs_b);
    }

    /// Wire framing: larger payloads never arrive before smaller ones sent
    /// earlier on the same path (FIFO links), and the datagram's wire size
    /// includes framing overhead.
    #[test]
    fn wire_bytes_include_framing(len in 0usize..2000) {
        let d = Datagram::udp(
            SockAddr::new(lynx_net::HostId(0), 1),
            SockAddr::new(lynx_net::HostId(1), 2),
            vec![0; len],
        );
        prop_assert_eq!(d.wire_bytes(), len + 46);
    }

    /// Stack counters: rx equals the number of datagrams delivered to
    /// bound ports; unbound ports count nothing.
    #[test]
    fn stack_counters_match_deliveries(n_bound in 0usize..20, n_unbound in 0usize..20) {
        let (mut sim, _net, client, server) = stack_pair();
        server.bind_udp(9, |_, _| {});
        for _ in 0..n_bound {
            client.send_udp(&mut sim, 5, SockAddr::new(server.host(), 9), vec![1]);
        }
        for _ in 0..n_unbound {
            client.send_udp(&mut sim, 5, SockAddr::new(server.host(), 10), vec![1]);
        }
        sim.run();
        let (rx, _tx) = server.counters();
        prop_assert_eq!(rx as usize, n_bound);
        let (_crx, ctx) = client.counters();
        prop_assert_eq!(ctx as usize, n_bound + n_unbound);
    }
}
