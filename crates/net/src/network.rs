//! The physical network: links, switch, datagram delivery.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use lynx_sim::{Payload, Server, Sim};

use crate::{ConnId, HostId, Proto, SockAddr};

/// Ethernet + IP + UDP framing overhead added to every message on the wire.
const FRAME_OVERHEAD: usize = 46;

/// Characteristics of a host's network attachment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// One-way propagation latency to the switch.
    pub latency: Duration,
}

impl LinkSpec {
    /// A 40 Gbps port (ConnectX-4 / Innova in the paper's testbed).
    pub fn gbps40() -> LinkSpec {
        LinkSpec {
            bandwidth_bps: 5.0e9,
            latency: Duration::from_nanos(500),
        }
    }

    /// A 25 Gbps port (the BlueField SmartNIC in the paper's testbed).
    pub fn gbps25() -> LinkSpec {
        LinkSpec {
            bandwidth_bps: 3.125e9,
            latency: Duration::from_nanos(500),
        }
    }
}

/// A transport-level message travelling on the network.
///
/// TCP segmentation is not modelled; a `Datagram` with [`Proto::Tcp`]
/// carries one framed application message on an established connection
/// (identified by `conn`), delivered reliably and in order.
#[derive(Clone, Debug)]
pub struct Datagram {
    /// Sender address.
    pub src: SockAddr,
    /// Destination address.
    pub dst: SockAddr,
    /// Transport protocol.
    pub proto: Proto,
    /// Connection id for TCP messages (assigned by [`crate::HostStack`]).
    pub conn: Option<ConnId>,
    /// Application payload — a shared [`Payload`] buffer, so cloning a
    /// datagram (fan-out, injected duplicates) never copies the payload.
    pub payload: Payload,
}

impl Datagram {
    /// Creates a UDP datagram.
    pub fn udp(src: SockAddr, dst: SockAddr, payload: impl Into<Payload>) -> Datagram {
        Datagram {
            src,
            dst,
            proto: Proto::Udp,
            conn: None,
            payload: payload.into(),
        }
    }

    /// Size on the wire, including framing overhead.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + FRAME_OVERHEAD
    }
}

type Handler = Rc<RefCell<dyn FnMut(&mut Sim, Datagram)>>;

struct HostPort {
    name: String,
    link: LinkSpec,
    egress: Server,
    ingress: Server,
    handler: Option<Handler>,
    rx_count: u64,
    tx_count: u64,
}

#[derive(Default)]
struct Inner {
    hosts: Vec<HostPort>,
    switch_latency: Duration,
    dropped: u64,
}

/// A single-switch datacenter network.
///
/// Every host hangs off one switch via a full-duplex link. A message from
/// `a` to `b` serializes on `a`'s egress lane, propagates through the
/// store-and-forward switch, serializes on `b`'s ingress lane, and is then
/// handed to `b`'s receive handler. Lanes are FIFO [`Server`]s, so
/// congestion and head-of-line blocking emerge naturally.
///
/// # Example
///
/// ```
/// use lynx_net::{Datagram, LinkSpec, Network, SockAddr};
/// use lynx_sim::Sim;
///
/// let mut sim = Sim::new(0);
/// let net = Network::new();
/// let a = net.add_host("client", LinkSpec::gbps40());
/// let b = net.add_host("server", LinkSpec::gbps40());
/// net.set_handler(b, |_sim, dgram| {
///     assert_eq!(dgram.payload, b"ping");
/// });
/// net.send(&mut sim, Datagram::udp(
///     SockAddr::new(a, 1000),
///     SockAddr::new(b, 7777),
///     b"ping".to_vec(),
/// ));
/// sim.run();
/// ```
#[derive(Clone, Default)]
pub struct Network {
    inner: Rc<RefCell<Inner>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Network")
            .field("hosts", &inner.hosts.len())
            .field("dropped", &inner.dropped)
            .finish()
    }
}

impl Network {
    /// Creates a network with the default store-and-forward switch latency
    /// (300 ns, typical of the paper's Mellanox SN2100).
    pub fn new() -> Network {
        let net = Network::default();
        net.inner.borrow_mut().switch_latency = Duration::from_nanos(300);
        net
    }

    /// Attaches a host and returns its id.
    pub fn add_host(&self, name: impl Into<String>, link: LinkSpec) -> HostId {
        let mut inner = self.inner.borrow_mut();
        let id = HostId(inner.hosts.len() as u32);
        inner.hosts.push(HostPort {
            name: name.into(),
            link,
            egress: Server::new(1.0),
            ingress: Server::new(1.0),
            handler: None,
            rx_count: 0,
            tx_count: 0,
        });
        id
    }

    /// Installs (or replaces) the receive handler of `host`. All datagrams
    /// addressed to any port of the host are delivered to this handler;
    /// port demultiplexing is done by [`crate::HostStack`].
    pub fn set_handler(&self, host: HostId, f: impl FnMut(&mut Sim, Datagram) + 'static) {
        self.inner.borrow_mut().hosts[host.0 as usize].handler = Some(Rc::new(RefCell::new(f)));
    }

    /// Name of a host (diagnostics).
    pub fn host_name(&self, host: HostId) -> String {
        self.inner.borrow().hosts[host.0 as usize].name.clone()
    }

    /// `(received, sent)` datagram counts for a host.
    pub fn host_counters(&self, host: HostId) -> (u64, u64) {
        let inner = self.inner.borrow();
        let h = &inner.hosts[host.0 as usize];
        (h.rx_count, h.tx_count)
    }

    /// Datagrams dropped because the destination had no handler.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// One-way propagation latency between two attached hosts, excluding
    /// serialization: `src link + switch + dst link`.
    ///
    /// # Panics
    ///
    /// Panics if either host id is unknown.
    pub fn path_latency(&self, src: HostId, dst: HostId) -> Duration {
        let inner = self.inner.borrow();
        let n = inner.hosts.len();
        let (s, d) = (src.0 as usize, dst.0 as usize);
        assert!(s < n && d < n, "path between unknown hosts");
        inner.hosts[s].link.latency + inner.switch_latency + inner.hosts[d].link.latency
    }

    /// The smallest one-way host-to-host propagation latency in the
    /// topology, or `None` when fewer than two hosts are attached.
    ///
    /// This is the lookahead bound a conservatively partitioned simulation
    /// needs: no message between any two hosts of this network can arrive
    /// sooner than this, so it is a safe time-window width for
    /// [`lynx_sim::Partition::link`] when the network is split across
    /// shards.
    pub fn min_path_latency(&self) -> Option<Duration> {
        let inner = self.inner.borrow();
        if inner.hosts.len() < 2 {
            return None;
        }
        let mut lats: Vec<Duration> = inner.hosts.iter().map(|h| h.link.latency).collect();
        lats.sort_unstable();
        Some(lats[0] + inner.switch_latency + lats[1])
    }

    /// Injects a datagram into the network at its source host.
    ///
    /// Protocol-stack CPU costs are *not* charged here — that is
    /// [`crate::HostStack`]'s job; `send` models only the wire.
    ///
    /// When a fault plan is armed (see `lynx_sim::faults`), each send
    /// consults site `net.<source host name>` and honors
    /// `Drop` (the datagram vanishes before reaching the wire),
    /// `Duplicate` (a copy is transmitted immediately after the original,
    /// reordering behind it on the egress lane), and `Delay` (the datagram
    /// is held back before serialization, reordering it behind later
    /// traffic). Other actions are ignored.
    ///
    /// # Panics
    ///
    /// Panics if the source or destination host id is unknown.
    pub fn send(&self, sim: &mut Sim, dgram: Datagram) {
        if sim.faults_enabled() {
            let site = format!("net.{}", self.host_name(dgram.src.host));
            match sim.fault_at(&site) {
                Some(lynx_sim::FaultAction::Drop) => return,
                Some(lynx_sim::FaultAction::Duplicate) => {
                    self.transmit(sim, dgram.clone());
                    self.transmit(sim, dgram);
                    return;
                }
                Some(lynx_sim::FaultAction::Delay(extra)) => {
                    let net = self.clone();
                    sim.schedule_in(extra, move |sim| net.transmit(sim, dgram));
                    return;
                }
                _ => {}
            }
        }
        self.transmit(sim, dgram);
    }

    /// The actual wire path, below the fault-injection point.
    fn transmit(&self, sim: &mut Sim, dgram: Datagram) {
        let bytes = dgram.wire_bytes();
        let (egress, src_lat, switch_lat, ingress, dst_lat) = {
            let mut inner = self.inner.borrow_mut();
            let n = inner.hosts.len();
            let (s, d) = (dgram.src.host.0 as usize, dgram.dst.host.0 as usize);
            assert!(s < n && d < n, "datagram between unknown hosts");
            inner.hosts[s].tx_count += 1;
            (
                inner.hosts[s].egress.clone(),
                inner.hosts[s].link.latency,
                inner.switch_latency,
                inner.hosts[d].ingress.clone(),
                inner.hosts[d].link.latency,
            )
        };
        let src_ser = {
            let inner = self.inner.borrow();
            Duration::from_secs_f64(
                bytes as f64 / inner.hosts[dgram.src.host.0 as usize].link.bandwidth_bps,
            )
        };
        let dst_ser = {
            let inner = self.inner.borrow();
            Duration::from_secs_f64(
                bytes as f64 / inner.hosts[dgram.dst.host.0 as usize].link.bandwidth_bps,
            )
        };
        let net = self.clone();
        egress.submit(sim, src_ser, move |sim| {
            let net2 = net.clone();
            sim.schedule_in(src_lat + switch_lat + dst_lat, move |sim| {
                ingress.submit(sim, dst_ser, move |sim| {
                    net2.deliver(sim, dgram);
                });
            });
        });
    }

    fn deliver(&self, sim: &mut Sim, dgram: Datagram) {
        let handler = {
            let mut inner = self.inner.borrow_mut();
            let h = &mut inner.hosts[dgram.dst.host.0 as usize];
            h.rx_count += 1;
            match &h.handler {
                Some(f) => Rc::clone(f),
                None => {
                    inner.dropped += 1;
                    return;
                }
            }
        };
        (handler.borrow_mut())(sim, dgram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lynx_sim::Time;
    use std::cell::Cell;

    fn two_hosts() -> (Sim, Network, HostId, HostId) {
        let sim = Sim::new(0);
        let net = Network::new();
        let a = net.add_host("a", LinkSpec::gbps40());
        let b = net.add_host("b", LinkSpec::gbps40());
        (sim, net, a, b)
    }

    #[test]
    fn delivery_carries_payload_and_takes_time() {
        let (mut sim, net, a, b) = two_hosts();
        let arrived = Rc::new(Cell::new(Time::ZERO));
        let t = Rc::clone(&arrived);
        net.set_handler(b, move |sim, d| {
            assert_eq!(d.payload, b"hello");
            t.set(sim.now());
        });
        net.send(
            &mut sim,
            Datagram::udp(SockAddr::new(a, 1), SockAddr::new(b, 2), b"hello".to_vec()),
        );
        sim.run();
        // Two 500ns propagations + 300ns switch + 2 serializations.
        assert!(arrived.get() > Time::from_nanos(1_300));
        assert!(arrived.get() < Time::from_micros(3));
        assert_eq!(net.host_counters(b).0, 1);
        assert_eq!(net.host_counters(a).1, 1);
    }

    #[test]
    fn fifo_ordering_per_path() {
        let (mut sim, net, a, b) = two_hosts();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        net.set_handler(b, move |_, d| s.borrow_mut().push(d.payload[0]));
        for i in 0..10u8 {
            net.send(
                &mut sim,
                Datagram::udp(SockAddr::new(a, 1), SockAddr::new(b, 2), vec![i]),
            );
        }
        sim.run();
        assert_eq!(*seen.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn missing_handler_counts_drop() {
        let (mut sim, net, a, b) = two_hosts();
        net.send(
            &mut sim,
            Datagram::udp(SockAddr::new(a, 1), SockAddr::new(b, 2), vec![0]),
        );
        sim.run();
        assert_eq!(net.dropped(), 1);
    }

    #[test]
    fn fault_drop_loses_the_packet() {
        use lynx_sim::{FaultAction, FaultPlan, Trigger};
        let (mut sim, net, a, b) = two_hosts();
        sim.enable_faults(FaultPlan::new(0).rule("net.a", Trigger::Nth(2), FaultAction::Drop));
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        net.set_handler(b, move |_, d| s.borrow_mut().push(d.payload[0]));
        for i in 0..4u8 {
            net.send(
                &mut sim,
                Datagram::udp(SockAddr::new(a, 1), SockAddr::new(b, 2), vec![i]),
            );
        }
        sim.run();
        assert_eq!(*seen.borrow(), vec![0, 2, 3]);
        assert_eq!(sim.faults_injected(), 1);
    }

    #[test]
    fn fault_duplicate_delivers_twice() {
        use lynx_sim::{FaultAction, FaultPlan, Trigger};
        let (mut sim, net, a, b) = two_hosts();
        sim.enable_faults(FaultPlan::new(0).rule("net.a", Trigger::Nth(1), FaultAction::Duplicate));
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        net.set_handler(b, move |_, d| s.borrow_mut().push(d.payload[0]));
        for i in 0..2u8 {
            net.send(
                &mut sim,
                Datagram::udp(SockAddr::new(a, 1), SockAddr::new(b, 2), vec![i]),
            );
        }
        sim.run();
        assert_eq!(*seen.borrow(), vec![0, 0, 1]);
    }

    #[test]
    fn fault_delay_reorders_behind_later_traffic() {
        use lynx_sim::{FaultAction, FaultPlan, Trigger};
        use std::time::Duration;
        let (mut sim, net, a, b) = two_hosts();
        sim.enable_faults(FaultPlan::new(0).rule(
            "net.a",
            Trigger::Nth(1),
            FaultAction::Delay(Duration::from_micros(50)),
        ));
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = Rc::clone(&seen);
        net.set_handler(b, move |_, d| s.borrow_mut().push(d.payload[0]));
        for i in 0..3u8 {
            net.send(
                &mut sim,
                Datagram::udp(SockAddr::new(a, 1), SockAddr::new(b, 2), vec![i]),
            );
        }
        sim.run();
        assert_eq!(*seen.borrow(), vec![1, 2, 0]);
    }

    #[test]
    fn big_messages_serialize_longer() {
        let (mut sim, net, a, b) = two_hosts();
        let t = Rc::new(Cell::new(Time::ZERO));
        let t2 = Rc::clone(&t);
        net.set_handler(b, move |sim, _| t2.set(sim.now()));
        net.send(
            &mut sim,
            Datagram::udp(SockAddr::new(a, 1), SockAddr::new(b, 2), vec![0; 1 << 20]),
        );
        sim.run();
        let big = t.get();
        // 1 MiB at 5 GB/s is ~210us per serialization, twice.
        assert!(big > Time::from_micros(400), "big={big}");
    }

    #[test]
    fn link_congestion_delays_later_messages() {
        let (mut sim, net, a, b) = two_hosts();
        let last = Rc::new(Cell::new(Time::ZERO));
        let l = Rc::clone(&last);
        net.set_handler(b, move |sim, _| l.set(sim.now()));
        for _ in 0..100 {
            net.send(
                &mut sim,
                Datagram::udp(SockAddr::new(a, 1), SockAddr::new(b, 2), vec![0; 64 * 1024]),
            );
        }
        sim.run();
        // 100 x 64KiB at 5GB/s ~ 1.3ms of serialization alone.
        assert!(last.get() > Time::from_millis(1));
    }
}
