//! # lynx-net — datacenter network and protocol-stack models
//!
//! Models the client-facing network of the Lynx testbed (§6 of the paper):
//! hosts joined by 25/40 Gbps links through one switch, and the cost of
//! UDP/TCP protocol processing on different processors and stacks.
//!
//! Two observations from the paper drive the design:
//!
//! * Protocol processing cost is **per message and per core**, and differs
//!   sharply between platforms: BlueField's ARM cores pay ~3–4× more per
//!   UDP message than a Xeon core, and its TCP listening path is an order of
//!   magnitude costlier still — this single constant produces the UDP/TCP
//!   scaling split of Figure 8c.
//! * Kernel-bypass matters: VMA reduces UDP processing latency 4× on
//!   BlueField and 2× on the host (§5.1.1). [`StackProfile`] captures the
//!   kernel vs. VMA variants of both platforms.
//!
//! The wire itself is modelled by [`Network`]: per-host full-duplex links
//! with serialization + propagation delay and a store-and-forward switch.
//! Delivery is functional — real payload bytes arrive at the destination
//! handler — so end-to-end tests verify data integrity.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod network;
mod stack;
mod tcp;

pub use addr::{HostId, Proto, SockAddr};
pub use network::{Datagram, LinkSpec, Network};
pub use stack::{HostStack, Platform, StackKind, StackProfile};
pub use tcp::{ConnId, TcpConn};
