//! Protocol-stack cost profiles and per-host stack instances.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use lynx_sim::{MultiServer, Payload, Sim, SiteCounter, TraceEvent};

use crate::tcp::ConnRole;
use crate::{ConnId, Datagram, HostId, Network, Proto, SockAddr, TcpConn};

/// Pre-interned per-host counter handles for the packet hot path. The
/// `net.<host>.<dir>_msgs` / `_bytes` names are formatted once per stack
/// (on the first packet in each direction), after which every packet is a
/// plain indexed add instead of a string lookup.
#[derive(Debug, Default)]
struct StackSites {
    rx_msgs: SiteCounter,
    rx_bytes: SiteCounter,
    tx_msgs: SiteCounter,
    tx_bytes: SiteCounter,
}

/// Processor on which the stack runs. Protocol costs are strongly
/// platform-dependent: the paper's §5.1.1 observes that "ARM cores on
/// Bluefield incur high system call cost" and that TCP "demands more compute
/// resources, and ARM cores suffer from higher impact" (§6.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Intel Xeon E5-2620 v2 class host core.
    Xeon,
    /// BlueField's ARM Cortex-A72 @ 800 MHz.
    ArmA72,
}

/// Which I/O stack processes the messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StackKind {
    /// The OS kernel socket path.
    Kernel,
    /// VMA user-level kernel-bypass networking. The paper measured VMA
    /// reducing UDP processing latency 4× on BlueField and 2× on the host.
    Vma,
}

/// Per-message CPU costs of protocol processing.
///
/// `tcp_conn_*` applies to an established, initiator-side connection (e.g.
/// the persistent memcached connection of the face-verification server);
/// `tcp_server_*` applies to the listening side multiplexing many client
/// connections, which is far more expensive (connection demux, flow state,
/// timers) and is what limits TCP scaling in Figure 8c.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StackProfile {
    /// Cost of receiving one UDP datagram.
    pub udp_rx: Duration,
    /// Cost of sending one UDP datagram.
    pub udp_tx: Duration,
    /// Marginal cost of each *additional* UDP datagram in one batched
    /// send ([`HostStack::send_udp_batch`]): the first datagram pays the
    /// full [`udp_tx`] (stack entry, route lookup, doorbell), later ones
    /// reuse that state and only pay descriptor setup. This is the
    /// `sendmmsg`/VMA multi-packet TX path the batched Lynx forwarder
    /// relies on to amortize the ARM stack's high per-call cost.
    ///
    /// [`udp_tx`]: StackProfile::udp_tx
    pub udp_tx_batched: Duration,
    /// Cost of receiving one message on a client-side TCP connection.
    pub tcp_conn_rx: Duration,
    /// Cost of sending one message on a client-side TCP connection.
    pub tcp_conn_tx: Duration,
    /// Latency-critical cost of receiving one message on a
    /// listening-side TCP connection.
    pub tcp_server_rx: Duration,
    /// Latency-critical cost of sending one message on a listening-side
    /// TCP connection.
    pub tcp_server_tx: Duration,
    /// Background per-message cost of the listening side (ack processing,
    /// timers, flow-state maintenance): consumes core cycles — it is what
    /// limits TCP scaling in Figure 8c — but runs off the critical path,
    /// so a single message's latency only sees the `tcp_server_*` parts
    /// (Figure 8a's +20-50 us TCP latency).
    pub tcp_server_bg: Duration,
    /// Copy cost per payload byte.
    pub per_byte: Duration,
}

impl StackProfile {
    /// The calibrated profile for a platform/stack combination.
    ///
    /// Constants are fitted so that the workloads of §6 reproduce the
    /// paper's capacities: a single Xeon core running the full Lynx UDP
    /// pipeline saturates at ≈250 K req/s (74 LeNet GPUs in Fig. 8c), the
    /// 7 ARM cores of BlueField at ≈350 K req/s (102 GPUs), BlueField's
    /// receive-only path at ≈0.5 M pkt/s (§6.2), and the TCP listening
    /// paths at ≈24.5 K req/s (Xeon core) and ≈52.5 K req/s (BlueField).
    pub fn of(platform: Platform, kind: StackKind) -> StackProfile {
        let us = |v: f64| Duration::from_secs_f64(v * 1e-6);
        match (platform, kind) {
            (Platform::Xeon, StackKind::Vma) => StackProfile {
                udp_rx: us(1.0),
                udp_tx: us(0.8),
                udp_tx_batched: us(0.2),
                tcp_conn_rx: us(2.4),
                tcp_conn_tx: us(2.0),
                tcp_server_rx: us(6.0),
                tcp_server_tx: us(4.8),
                tcp_server_bg: us(20.0),
                per_byte: Duration::from_nanos(0),
            },
            // "2x UDP latency reduction" from VMA on the host => kernel
            // costs double.
            (Platform::Xeon, StackKind::Kernel) => StackProfile {
                udp_rx: us(2.0),
                udp_tx: us(1.6),
                udp_tx_batched: us(0.4),
                tcp_conn_rx: us(4.8),
                tcp_conn_tx: us(4.0),
                tcp_server_rx: us(9.0),
                tcp_server_tx: us(7.2),
                tcp_server_bg: us(26.0),
                per_byte: Duration::from_nanos(0),
            },
            (Platform::ArmA72, StackKind::Vma) => StackProfile {
                udp_rx: us(3.0),
                udp_tx: us(2.4),
                udp_tx_batched: us(0.6),
                // Established-connection TCP is ~8x its Xeon cost on the
                // ARM cores — the "slower TCP stack processing on Bluefield
                // when accessing memcached" of §6.4.
                tcp_conn_rx: us(16.0),
                tcp_conn_tx: us(13.0),
                tcp_server_rx: us(25.0),
                tcp_server_tx: us(15.0),
                tcp_server_bg: us(84.5),
                per_byte: Duration::from_nanos(1),
            },
            // "VMA reduces the processing latency by a factor of 4" on
            // BlueField => kernel costs quadruple.
            (Platform::ArmA72, StackKind::Kernel) => StackProfile {
                udp_rx: us(12.0),
                udp_tx: us(9.6),
                udp_tx_batched: us(2.4),
                tcp_conn_rx: us(28.0),
                tcp_conn_tx: us(24.0),
                tcp_server_rx: us(60.0),
                tcp_server_tx: us(40.0),
                tcp_server_bg: us(200.0),
                per_byte: Duration::from_nanos(2),
            },
        }
    }

    fn rx_cost(&self, proto: Proto, role: Option<ConnRole>, bytes: usize) -> Duration {
        let base = match (proto, role) {
            (Proto::Udp, _) => self.udp_rx,
            (Proto::Tcp, Some(ConnRole::Client)) => self.tcp_conn_rx,
            (Proto::Tcp, _) => self.tcp_server_rx,
        };
        base + self.per_byte * bytes as u32
    }

    fn tx_cost(&self, proto: Proto, role: Option<ConnRole>, bytes: usize) -> Duration {
        let base = match (proto, role) {
            (Proto::Udp, _) => self.udp_tx,
            (Proto::Tcp, Some(ConnRole::Client)) => self.tcp_conn_tx,
            (Proto::Tcp, _) => self.tcp_server_tx,
        };
        base + self.per_byte * bytes as u32
    }
}

type UdpHandler = Rc<RefCell<dyn FnMut(&mut Sim, Datagram)>>;
type TcpHandler = Rc<RefCell<dyn FnMut(&mut Sim, ConnId, Payload)>>;
type ConnectCb = Box<dyn FnOnce(&mut Sim, ConnId)>;

struct Inner {
    host: HostId,
    profile: StackProfile,
    cores: MultiServer,
    contention: f64,
    udp_handlers: HashMap<u16, UdpHandler>,
    udp_default: Option<UdpHandler>,
    tcp_listeners: HashMap<u16, TcpHandler>,
    conns: HashMap<ConnId, TcpConn>,
    conn_rx: HashMap<ConnId, TcpHandler>,
    pending_connect: HashMap<ConnId, ConnectCb>,
    next_conn: u64,
    next_ephemeral: u16,
    rx_msgs: u64,
    tx_msgs: u64,
}

/// The protocol stack of one host: UDP sockets and TCP connections whose
/// processing cost is charged to the host's network-processing cores.
///
/// Creating a `HostStack` installs it as the host's receive handler on the
/// [`Network`]. Applications interact through `bind_udp` / `send_udp` and
/// `listen_tcp` / `connect_tcp` / `send_tcp`; every message charges the
/// platform's [`StackProfile`] cost on the stack's core pool before the
/// application callback runs (receive) or the wire transfer starts (send).
///
/// # Example
///
/// ```
/// use lynx_net::{HostStack, LinkSpec, Network, Platform, SockAddr, StackKind, StackProfile};
/// use lynx_sim::{MultiServer, Sim};
///
/// let mut sim = Sim::new(0);
/// let net = Network::new();
/// let c = net.add_host("client", LinkSpec::gbps40());
/// let s = net.add_host("server", LinkSpec::gbps40());
/// let client = HostStack::new(&net, c, MultiServer::new(1, 1.0),
///     StackProfile::of(Platform::Xeon, StackKind::Vma));
/// let server = HostStack::new(&net, s, MultiServer::new(1, 1.0),
///     StackProfile::of(Platform::Xeon, StackKind::Vma));
/// server.bind_udp(7777, |_sim, dgram| assert_eq!(dgram.payload, b"ping"));
/// client.send_udp(&mut sim, 5000, SockAddr::new(s, 7777), b"ping".to_vec());
/// sim.run();
/// ```
#[derive(Clone)]
pub struct HostStack {
    net: Network,
    inner: Rc<RefCell<Inner>>,
    sites: Rc<StackSites>,
}

impl fmt::Debug for HostStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("HostStack")
            .field("host", &inner.host)
            .field("rx_msgs", &inner.rx_msgs)
            .field("tx_msgs", &inner.tx_msgs)
            .field("conns", &inner.conns.len())
            .finish()
    }
}

impl HostStack {
    /// Creates the stack for `host`, processing messages on `cores`.
    pub fn new(
        net: &Network,
        host: HostId,
        cores: MultiServer,
        profile: StackProfile,
    ) -> HostStack {
        let stack = HostStack {
            net: net.clone(),
            sites: Rc::new(StackSites::default()),
            inner: Rc::new(RefCell::new(Inner {
                host,
                profile,
                cores,
                contention: 0.0,
                udp_handlers: HashMap::new(),
                udp_default: None,
                tcp_listeners: HashMap::new(),
                conns: HashMap::new(),
                conn_rx: HashMap::new(),
                pending_connect: HashMap::new(),
                next_conn: 0,
                next_ephemeral: 40_000,
                rx_msgs: 0,
                tx_msgs: 0,
            })),
        };
        let s = stack.clone();
        net.set_handler(host, move |sim, dgram| s.on_wire_rx(sim, dgram));
        stack
    }

    /// This stack's host id.
    pub fn host(&self) -> HostId {
        self.inner.borrow().host
    }

    /// Records a stack-level telemetry event (and the matching per-host
    /// counters) when the simulation has telemetry enabled. `rx` selects
    /// the receive or transmit direction. Events are stamped at the
    /// instant the message enters the stack, before its CPU cost is
    /// charged. Counter adds go through pre-interned [`SiteCounter`]
    /// handles, so the per-packet cost is an indexed add.
    fn note_packet(&self, sim: &Sim, host: HostId, proto: &'static str, bytes: usize, rx: bool) {
        let Some(t) = sim.telemetry() else { return };
        if rx {
            self.sites
                .rx_msgs
                .add_with(t, || format!("net.{host}.rx_msgs"), 1);
            self.sites
                .rx_bytes
                .add_with(t, || format!("net.{host}.rx_bytes"), bytes as u64);
        } else {
            self.sites
                .tx_msgs
                .add_with(t, || format!("net.{host}.tx_msgs"), 1);
            self.sites
                .tx_bytes
                .add_with(t, || format!("net.{host}.tx_bytes"), bytes as u64);
        }
        let host = host.to_string();
        let event = if rx {
            TraceEvent::PacketRx { host, proto, bytes }
        } else {
            TraceEvent::PacketTx { host, proto, bytes }
        };
        t.record(sim.now(), event);
    }

    /// The core pool protocol processing is charged to. Server logic that
    /// shares these cores (the Lynx dispatcher on the SmartNIC) should
    /// charge its own work through [`HostStack::charge`].
    pub fn cores(&self) -> MultiServer {
        self.inner.borrow().cores.clone()
    }

    /// Sets the multi-core contention factor `alpha`: effective per-message
    /// cost is scaled by `1 + alpha * (lanes - 1)`, modelling lock and
    /// cache-line contention of a shared user-level stack.
    pub fn set_contention(&self, alpha: f64) {
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid contention");
        self.inner.borrow_mut().contention = alpha;
    }

    /// `(received, sent)` message counts (post-stack, i.e. accepted ones).
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.rx_msgs, inner.tx_msgs)
    }

    /// Charges `cost` of work to this stack's cores (with the contention
    /// scaling applied), then runs `done`.
    pub fn charge(&self, sim: &mut Sim, cost: Duration, done: impl FnOnce(&mut Sim) + 'static) {
        let (cores, scaled) = {
            let inner = self.inner.borrow();
            (inner.cores.clone(), self.scale(&inner, cost))
        };
        cores.submit(sim, scaled, done);
    }

    /// Charges `cost` of work to a *specific* core lane (with the
    /// contention scaling applied), then runs `done`. Used by the sharded
    /// SNIC pipeline to pin each dispatcher core's drain work to its own
    /// lane, keeping the per-core interleaving deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range for the stack's core pool.
    pub fn charge_on(
        &self,
        sim: &mut Sim,
        lane: usize,
        cost: Duration,
        done: impl FnOnce(&mut Sim) + 'static,
    ) {
        let (cores, scaled) = {
            let inner = self.inner.borrow();
            (inner.cores.clone(), self.scale(&inner, cost))
        };
        cores.submit_to(sim, lane, scaled, done);
    }

    fn scale(&self, inner: &Inner, cost: Duration) -> Duration {
        let lanes = inner.cores.lanes();
        cost.mul_f64(1.0 + inner.contention * (lanes as f64 - 1.0))
    }

    /// Binds a UDP port to an application receive callback.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound.
    pub fn bind_udp(&self, port: u16, f: impl FnMut(&mut Sim, Datagram) + 'static) {
        let prev = self
            .inner
            .borrow_mut()
            .udp_handlers
            .insert(port, Rc::new(RefCell::new(f)));
        assert!(prev.is_none(), "UDP port {port} already bound");
    }

    /// Installs a catch-all receive callback for UDP datagrams arriving on
    /// ports without a specific binding (load generators use one ephemeral
    /// port per in-flight request to match responses to send times).
    pub fn bind_udp_default(&self, f: impl FnMut(&mut Sim, Datagram) + 'static) {
        self.inner.borrow_mut().udp_default = Some(Rc::new(RefCell::new(f)));
    }

    /// Sends a UDP datagram from `src_port`, charging the send-side cost.
    ///
    /// The payload is anything convertible to [`Payload`]; passing a
    /// `Payload` handle (e.g. one forwarded from a received datagram) is an
    /// `Rc` bump, not a copy.
    pub fn send_udp(
        &self,
        sim: &mut Sim,
        src_port: u16,
        dst: SockAddr,
        payload: impl Into<Payload>,
    ) {
        let payload = payload.into();
        let (cost, src) = {
            let mut inner = self.inner.borrow_mut();
            inner.tx_msgs += 1;
            let cost = self.scale(
                &inner,
                inner.profile.tx_cost(Proto::Udp, None, payload.len()),
            );
            (cost, SockAddr::new(inner.host, src_port))
        };
        self.note_packet(sim, src.host, "udp", payload.len(), false);
        let net = self.net.clone();
        let cores = self.inner.borrow().cores.clone();
        cores.submit(sim, cost, move |sim| {
            net.send(sim, Datagram::udp(src, dst, payload));
        });
    }

    /// Sends a batch of UDP datagrams from `src_port` in one stack
    /// invocation (the `sendmmsg`-style multi-packet TX path).
    ///
    /// The whole batch is charged as a single unit of work: the first
    /// datagram pays the full [`StackProfile::udp_tx`] cost, each further
    /// one only the [`StackProfile::udp_tx_batched`] marginal (plus the
    /// per-byte copy cost for every payload). All datagrams enter the
    /// wire together when that work completes, in batch order. A
    /// single-element batch costs exactly what [`HostStack::send_udp`]
    /// charges; an empty batch is a no-op.
    pub fn send_udp_batch<B: Into<Payload>>(
        &self,
        sim: &mut Sim,
        src_port: u16,
        msgs: Vec<(SockAddr, B)>,
    ) {
        if msgs.is_empty() {
            return;
        }
        let msgs: Vec<(SockAddr, Payload)> =
            msgs.into_iter().map(|(dst, p)| (dst, p.into())).collect();
        let (cost, src) = {
            let mut inner = self.inner.borrow_mut();
            inner.tx_msgs += msgs.len() as u64;
            let mut cost =
                inner.profile.udp_tx + inner.profile.udp_tx_batched * (msgs.len() as u32 - 1);
            for (_, payload) in &msgs {
                cost += inner.profile.per_byte * payload.len() as u32;
            }
            let cost = self.scale(&inner, cost);
            (cost, SockAddr::new(inner.host, src_port))
        };
        for (_, payload) in &msgs {
            self.note_packet(sim, src.host, "udp", payload.len(), false);
        }
        let net = self.net.clone();
        let cores = self.inner.borrow().cores.clone();
        cores.submit(sim, cost, move |sim| {
            for (dst, payload) in msgs {
                net.send(sim, Datagram::udp(src, dst, payload));
            }
        });
    }

    /// Starts listening for TCP connections on `port`; `on_msg` receives
    /// every application message on every accepted connection.
    ///
    /// # Panics
    ///
    /// Panics if the port already has a listener.
    pub fn listen_tcp(&self, port: u16, on_msg: impl FnMut(&mut Sim, ConnId, Payload) + 'static) {
        let prev = self
            .inner
            .borrow_mut()
            .tcp_listeners
            .insert(port, Rc::new(RefCell::new(on_msg)));
        assert!(prev.is_none(), "TCP port {port} already listening");
    }

    /// Opens a TCP connection to `dst`. `on_msg` receives inbound messages;
    /// `on_connected` fires once the (1-RTT) handshake completes.
    ///
    /// Returns the connection id immediately; sends before `on_connected`
    /// are rejected.
    pub fn connect_tcp(
        &self,
        sim: &mut Sim,
        dst: SockAddr,
        on_msg: impl FnMut(&mut Sim, ConnId, Payload) + 'static,
        on_connected: impl FnOnce(&mut Sim, ConnId) + 'static,
    ) -> ConnId {
        let (id, local_port, syn_cost, src_host) = {
            let mut inner = self.inner.borrow_mut();
            let id = ConnId {
                initiator: inner.host,
                seq: inner.next_conn,
            };
            inner.next_conn += 1;
            let local_port = inner.next_ephemeral;
            inner.next_ephemeral = inner.next_ephemeral.wrapping_add(1).max(40_000);
            inner.conns.insert(
                id,
                TcpConn {
                    id,
                    peer: dst,
                    local_port,
                    role: ConnRole::Client,
                    established: false,
                },
            );
            inner.conn_rx.insert(id, Rc::new(RefCell::new(on_msg)));
            inner.pending_connect.insert(id, Box::new(on_connected));
            let cost = self.scale(&inner, inner.profile.tcp_conn_tx);
            (id, local_port, cost, inner.host)
        };
        let net = self.net.clone();
        let cores = self.inner.borrow().cores.clone();
        cores.submit(sim, syn_cost, move |sim| {
            net.send(
                sim,
                Datagram {
                    src: SockAddr::new(src_host, local_port),
                    dst,
                    proto: Proto::Tcp,
                    conn: Some(id),
                    payload: Payload::new(),
                },
            );
        });
        id
    }

    /// Sends an application message on an established connection.
    ///
    /// # Panics
    ///
    /// Panics if the connection is unknown or not yet established, or if
    /// `payload` is empty (zero-length messages are reserved for the
    /// handshake).
    pub fn send_tcp(&self, sim: &mut Sim, conn: ConnId, payload: impl Into<Payload>) {
        let payload = payload.into();
        assert!(!payload.is_empty(), "zero-length TCP messages are reserved");
        let (cost, src, dst) = {
            let mut inner = self.inner.borrow_mut();
            inner.tx_msgs += 1;
            let c = inner
                .conns
                .get(&conn)
                .unwrap_or_else(|| panic!("send on unknown connection {conn}"));
            assert!(c.established, "send on unestablished connection {conn}");
            let role = c.role;
            let src = SockAddr::new(inner.host, c.local_port);
            let dst = c.peer;
            let cost = self.scale(
                &inner,
                inner.profile.tx_cost(Proto::Tcp, Some(role), payload.len()),
            );
            (cost, src, dst)
        };
        self.note_packet(sim, src.host, "tcp", payload.len(), false);
        let net = self.net.clone();
        let cores = self.inner.borrow().cores.clone();
        net_send_after(
            sim,
            cores,
            cost,
            net,
            Datagram {
                src,
                dst,
                proto: Proto::Tcp,
                conn: Some(conn),
                payload,
            },
        );
    }

    /// Information about a local connection endpoint, if known.
    pub fn conn(&self, id: ConnId) -> Option<TcpConn> {
        self.inner.borrow().conns.get(&id).cloned()
    }

    fn on_wire_rx(&self, sim: &mut Sim, dgram: Datagram) {
        match dgram.proto {
            Proto::Udp => self.on_udp(sim, dgram),
            Proto::Tcp => self.on_tcp(sim, dgram),
        }
    }

    fn on_udp(&self, sim: &mut Sim, dgram: Datagram) {
        let (handler, cost) = {
            let mut inner = self.inner.borrow_mut();
            let handler = inner
                .udp_handlers
                .get(&dgram.dst.port)
                .or(inner.udp_default.as_ref())
                .cloned();
            let Some(h) = handler else {
                return; // closed port: drop
            };
            inner.rx_msgs += 1;
            let cost = self.scale(
                &inner,
                inner.profile.rx_cost(Proto::Udp, None, dgram.payload.len()),
            );
            (h, cost)
        };
        self.note_packet(sim, dgram.dst.host, "udp", dgram.payload.len(), true);
        let cores = self.inner.borrow().cores.clone();
        cores.submit(sim, cost, move |sim| {
            (handler.borrow_mut())(sim, dgram);
        });
    }

    fn on_tcp(&self, sim: &mut Sim, dgram: Datagram) {
        let conn_id = dgram.conn.expect("TCP datagram without connection id");
        if dgram.payload.is_empty() {
            self.on_tcp_handshake(sim, conn_id, dgram);
        } else {
            self.on_tcp_data(sim, conn_id, dgram);
        }
    }

    fn on_tcp_handshake(&self, sim: &mut Sim, conn_id: ConnId, dgram: Datagram) {
        // Either a SYN arriving at a listener, or a SYN-ACK at the client.
        let mut inner = self.inner.borrow_mut();
        if let Some(conn) = inner.conns.get_mut(&conn_id) {
            // SYN-ACK: handshake complete on the client.
            conn.established = true;
            let cb = inner.pending_connect.remove(&conn_id);
            drop(inner);
            if let Some(cb) = cb {
                cb(sim, conn_id);
            }
            return;
        }
        // SYN at the listening side.
        let Some(handler) = inner.tcp_listeners.get(&dgram.dst.port).cloned() else {
            return; // connection refused: drop
        };
        let local_port = dgram.dst.port;
        inner.conns.insert(
            conn_id,
            TcpConn {
                id: conn_id,
                peer: dgram.src,
                local_port,
                role: ConnRole::Server,
                established: true,
            },
        );
        inner.conn_rx.insert(conn_id, handler);
        let accept_cost = self.scale(&inner, inner.profile.tcp_server_rx);
        let host = inner.host;
        let cores = inner.cores.clone();
        drop(inner);
        let net = self.net.clone();
        let reply_to = dgram.src;
        cores.submit(sim, accept_cost, move |sim| {
            net.send(
                sim,
                Datagram {
                    src: SockAddr::new(host, local_port),
                    dst: reply_to,
                    proto: Proto::Tcp,
                    conn: Some(conn_id),
                    payload: Payload::new(),
                },
            );
        });
    }

    fn on_tcp_data(&self, sim: &mut Sim, conn_id: ConnId, dgram: Datagram) {
        let (handler, cost, bg) = {
            let mut inner = self.inner.borrow_mut();
            let Some(conn) = inner.conns.get(&conn_id) else {
                return; // unknown connection: drop
            };
            let role = conn.role;
            let Some(h) = inner.conn_rx.get(&conn_id).cloned() else {
                return;
            };
            inner.rx_msgs += 1;
            let cost = self.scale(
                &inner,
                inner
                    .profile
                    .rx_cost(Proto::Tcp, Some(role), dgram.payload.len()),
            );
            let bg = match role {
                ConnRole::Server => self.scale(&inner, inner.profile.tcp_server_bg),
                ConnRole::Client => Duration::ZERO,
            };
            (h, cost, bg)
        };
        self.note_packet(sim, dgram.dst.host, "tcp", dgram.payload.len(), true);
        let cores = self.inner.borrow().cores.clone();
        if !bg.is_zero() {
            // Off-critical-path protocol work still occupies the cores.
            cores.submit(sim, bg, |_| {});
        }
        cores.submit(sim, cost, move |sim| {
            (handler.borrow_mut())(sim, conn_id, dgram.payload);
        });
    }
}

fn net_send_after(
    sim: &mut Sim,
    cores: MultiServer,
    cost: Duration,
    net: Network,
    dgram: Datagram,
) {
    cores.submit(sim, cost, move |sim| {
        net.send(sim, dgram);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkSpec;
    use std::cell::Cell;

    fn pair() -> (Sim, Network, HostStack, HostStack) {
        let sim = Sim::new(0);
        let net = Network::new();
        let a = net.add_host("a", LinkSpec::gbps40());
        let b = net.add_host("b", LinkSpec::gbps40());
        let sa = HostStack::new(
            &net,
            a,
            MultiServer::new(1, 1.0),
            StackProfile::of(Platform::Xeon, StackKind::Vma),
        );
        let sb = HostStack::new(
            &net,
            b,
            MultiServer::new(1, 1.0),
            StackProfile::of(Platform::Xeon, StackKind::Vma),
        );
        (sim, net, sa, sb)
    }

    #[test]
    fn udp_roundtrip_echo() {
        let (mut sim, _net, client, server) = pair();
        let (chost, shost) = (client.host(), server.host());
        let server2 = server.clone();
        server.bind_udp(7777, move |sim, d| {
            let reply_to = d.src;
            server2.send_udp(sim, 7777, reply_to, d.payload);
        });
        let got = Rc::new(Cell::new(false));
        let g = Rc::clone(&got);
        client.bind_udp(5000, move |_sim, d| {
            assert_eq!(d.payload, b"ping");
            assert_eq!(d.src, SockAddr::new(shost, 7777));
            g.set(true);
        });
        client.send_udp(&mut sim, 5000, SockAddr::new(shost, 7777), b"ping".to_vec());
        sim.run();
        assert!(got.get());
        let _ = chost;
    }

    #[test]
    fn udp_unbound_port_drops() {
        let (mut sim, _net, client, server) = pair();
        client.send_udp(&mut sim, 5000, SockAddr::new(server.host(), 9999), vec![1]);
        sim.run();
        assert_eq!(server.counters().0, 0);
    }

    #[test]
    fn tcp_connect_and_exchange() {
        let (mut sim, _net, client, server) = pair();
        let server2 = server.clone();
        server.listen_tcp(80, move |sim, conn, msg| {
            assert_eq!(msg, b"GET");
            server2.send_tcp(sim, conn, b"RESP".to_vec());
        });
        let got = Rc::new(Cell::new(false));
        let g = Rc::clone(&got);
        let dst = SockAddr::new(server.host(), 80);
        let client2 = client.clone();
        client.connect_tcp(
            &mut sim,
            dst,
            move |_sim, _conn, msg| {
                assert_eq!(msg, b"RESP");
                g.set(true);
            },
            move |sim, conn| {
                client2.send_tcp(sim, conn, b"GET".to_vec());
            },
        );
        sim.run();
        assert!(got.get());
    }

    #[test]
    fn tcp_costs_more_than_udp() {
        // Measure completion time of one message each way.
        let (mut sim, _net, client, server) = pair();
        let t_udp = Rc::new(Cell::new(lynx_sim::Time::ZERO));
        let t = Rc::clone(&t_udp);
        server.bind_udp(7777, move |sim, _| t.set(sim.now()));
        client.send_udp(&mut sim, 1, SockAddr::new(server.host(), 7777), vec![9]);
        sim.run();
        let udp_done = t_udp.get();

        let (mut sim2, _net2, client2, server2) = pair();
        let t_tcp = Rc::new(Cell::new(lynx_sim::Time::ZERO));
        let t2 = Rc::clone(&t_tcp);
        server2.listen_tcp(80, move |sim, _c, _m| t2.set(sim.now()));
        let dst = SockAddr::new(server2.host(), 80);
        let c2 = client2.clone();
        client2.connect_tcp(
            &mut sim2,
            dst,
            |_, _, _| {},
            move |sim, conn| c2.send_tcp(sim, conn, vec![9]),
        );
        sim2.run();
        assert!(
            t_tcp.get() > udp_done,
            "TCP handshake+server rx must cost more"
        );
    }

    #[test]
    #[should_panic(expected = "unestablished")]
    fn send_before_established_panics() {
        let (mut sim, _net, client, server) = pair();
        server.listen_tcp(80, |_, _, _| {});
        let conn = client.connect_tcp(
            &mut sim,
            SockAddr::new(server.host(), 80),
            |_, _, _| {},
            |_, _| {},
        );
        // Handshake has not run yet.
        client.send_tcp(&mut sim, conn, vec![1]);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let (_sim, _net, client, _server) = pair();
        client.bind_udp(1, |_, _| {});
        client.bind_udp(1, |_, _| {});
    }

    #[test]
    fn udp_batch_amortizes_tx_cost() {
        // One batched send of 4 datagrams must beat 4 individual sends
        // and land them all; a 1-element batch must cost exactly one
        // send_udp.
        let (mut sim, _net, client, server) = pair();
        let got = Rc::new(Cell::new(0u32));
        let g = Rc::clone(&got);
        server.bind_udp(7777, move |_sim, _d| g.set(g.get() + 1));
        let dst = SockAddr::new(server.host(), 7777);
        client.send_udp_batch(
            &mut sim,
            5000,
            (0..4).map(|i| (dst, vec![i as u8])).collect(),
        );
        sim.run();
        assert_eq!(got.get(), 4);
        assert_eq!(client.counters().1, 4);

        // Sender-side timing: aim at an unbound port so only tx cost and
        // wire delivery determine the finish time.
        let (mut sim1, _net1, client1, server1) = pair();
        let sink1 = SockAddr::new(server1.host(), 9999);
        client1.send_udp_batch(&mut sim1, 5000, (0..4).map(|i| (sink1, vec![i])).collect());
        sim1.run();
        let batched_tx_done = sim1.now();
        let (mut sim2, _net2, client2, server2) = pair();
        let sink2 = SockAddr::new(server2.host(), 9999);
        for i in 0..4 {
            client2.send_udp(&mut sim2, 5000, sink2, vec![i]);
        }
        sim2.run();
        assert!(
            batched_tx_done < sim2.now(),
            "batched {batched_tx_done:?} vs serial {:?}",
            sim2.now()
        );

        // k = 1: identical timing to a plain send_udp.
        let (mut sim3, _net3, client3, server3) = pair();
        server3.bind_udp(7777, |_s, _d| {});
        let d3 = SockAddr::new(server3.host(), 7777);
        client3.send_udp_batch(&mut sim3, 5000, vec![(d3, vec![7])]);
        sim3.run();
        let (mut sim4, _net4, client4, server4) = pair();
        server4.bind_udp(7777, |_s, _d| {});
        let d4 = SockAddr::new(server4.host(), 7777);
        client4.send_udp(&mut sim4, 5000, d4, vec![7]);
        sim4.run();
        assert_eq!(sim3.now(), sim4.now());
    }

    #[test]
    fn contention_scales_cost() {
        let mut sim = Sim::new(0);
        let net = Network::new();
        let h = net.add_host("h", LinkSpec::gbps40());
        let stack = HostStack::new(
            &net,
            h,
            MultiServer::new(6, 1.0),
            StackProfile::of(Platform::Xeon, StackKind::Vma),
        );
        stack.set_contention(0.25);
        let done = Rc::new(Cell::new(lynx_sim::Time::ZERO));
        let d = Rc::clone(&done);
        stack.charge(&mut sim, Duration::from_micros(4), move |sim| {
            d.set(sim.now());
        });
        sim.run();
        // 4us * (1 + 0.25*5) = 9us.
        assert_eq!(done.get(), lynx_sim::Time::from_micros(9));
    }

    #[test]
    fn arm_vma_costs_exceed_xeon_vma() {
        let x = StackProfile::of(Platform::Xeon, StackKind::Vma);
        let a = StackProfile::of(Platform::ArmA72, StackKind::Vma);
        assert!(a.udp_rx > x.udp_rx);
        assert!(a.tcp_server_rx > x.tcp_server_rx);
    }

    #[test]
    fn kernel_stack_costs_exceed_vma() {
        for p in [Platform::Xeon, Platform::ArmA72] {
            let k = StackProfile::of(p, StackKind::Kernel);
            let v = StackProfile::of(p, StackKind::Vma);
            assert!(k.udp_rx >= v.udp_rx * 2, "{p:?}");
        }
    }
}
