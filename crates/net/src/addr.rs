//! Network addressing primitives.

use std::fmt;

/// Identifier of a host (machine or SmartNIC in multi-homed mode) on the
/// simulated network.
///
/// The BlueField SmartNIC runs "as a separate machine with its own network
/// stack and IP address" (§2 of the paper), so a SmartNIC gets its own
/// `HostId` distinct from the server that hosts it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// Transport protocol of a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Proto {
    /// Connectionless datagrams.
    Udp,
    /// Stream transport; modelled as framed messages on a connection.
    Tcp,
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Proto::Udp => "UDP",
            Proto::Tcp => "TCP",
        })
    }
}

/// A `(host, port)` socket address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SockAddr {
    /// Host part.
    pub host: HostId,
    /// Port part.
    pub port: u16,
}

impl SockAddr {
    /// Creates an address from host and port.
    pub const fn new(host: HostId, port: u16) -> SockAddr {
        SockAddr { host, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let a = SockAddr::new(HostId(3), 7777);
        assert_eq!(a.to_string(), "host3:7777");
        assert_eq!(Proto::Udp.to_string(), "UDP");
        assert_eq!(Proto::Tcp.to_string(), "TCP");
    }

    #[test]
    fn addr_equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SockAddr::new(HostId(1), 80));
        assert!(set.contains(&SockAddr::new(HostId(1), 80)));
        assert!(!set.contains(&SockAddr::new(HostId(1), 81)));
    }
}
