//! TCP connection identity and state.

use std::fmt;

use crate::{HostId, SockAddr};

/// Globally unique identifier of a TCP connection.
///
/// Assigned by the connection initiator; including the initiator's host id
/// keeps ids unique across the whole network without coordination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnId {
    /// Host that initiated the connection.
    pub initiator: HostId,
    /// Initiator-local sequence number.
    pub seq: u64,
}

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tcp:{}#{}", self.initiator, self.seq)
    }
}

/// Which side of the connection a stack is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ConnRole {
    /// Initiated via `connect`; charged at single-connection rates.
    Client,
    /// Accepted via `listen`; charged at server (many-connection) rates.
    Server,
}

/// Local state of one TCP connection endpoint.
#[derive(Clone, Debug)]
pub struct TcpConn {
    pub(crate) id: ConnId,
    pub(crate) peer: SockAddr,
    pub(crate) local_port: u16,
    pub(crate) role: ConnRole,
    pub(crate) established: bool,
}

impl TcpConn {
    /// The connection id.
    pub fn id(&self) -> ConnId {
        self.id
    }

    /// Remote endpoint address.
    pub fn peer(&self) -> SockAddr {
        self.peer
    }

    /// Local port this endpoint is bound to.
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// Whether the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.established
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_ids_distinguish_initiators() {
        let a = ConnId {
            initiator: HostId(1),
            seq: 0,
        };
        let b = ConnId {
            initiator: HostId(2),
            seq: 0,
        };
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "tcp:host1#0");
    }
}
