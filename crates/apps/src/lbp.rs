//! Local Binary Patterns face verification (§6.4).
//!
//! "The comparison is performed using a well-known local binary patterns
//! (LBP) algorithm for Face Verification." A client sends a picture plus a
//! label (person id); the server fetches the label's reference picture
//! from the database tier (memcached) and compares the two with LBP
//! histograms under a χ² distance.
//!
//! Images are 32×32 grayscale ("images from a color FERET Database resized
//! to 32×32"); labels are 12-byte strings. The FERET data itself is not
//! redistributable, so [`FaceDb`] synthesizes deterministic per-person
//! face textures with the same geometry.

use std::time::Duration;

use lynx_device::RequestProcessor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Face image side length.
pub const FACE_SIDE: usize = 32;

/// Bytes per face image.
pub const FACE_BYTES: usize = FACE_SIDE * FACE_SIDE;

/// Bytes per label ("labels are random 12-byte strings").
pub const LABEL_BYTES: usize = 12;

/// GPU kernel time of one LBP comparison ("kernel execution time (about
/// 50 µsec)", §6.4).
pub const LBP_KERNEL_TIME: Duration = Duration::from_micros(50);

/// χ² distance below which two faces verify as the same person.
pub const MATCH_THRESHOLD: f64 = 90.0;

/// Computes the 256-bin LBP histogram of a grayscale image.
///
/// Each interior pixel is compared against its 8 neighbors (clockwise from
/// the top-left); bit `i` is set when the neighbor is at least as bright.
///
/// # Panics
///
/// Panics if `img.len() != w * h` or the image is smaller than 3×3.
pub fn lbp_histogram(img: &[u8], w: usize, h: usize) -> [u32; 256] {
    assert_eq!(img.len(), w * h, "image size mismatch");
    assert!(w >= 3 && h >= 3, "image too small for LBP");
    const NEIGHBORS: [(isize, isize); 8] = [
        (-1, -1),
        (-1, 0),
        (-1, 1),
        (0, 1),
        (1, 1),
        (1, 0),
        (1, -1),
        (0, -1),
    ];
    let mut hist = [0u32; 256];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let c = img[y * w + x];
            let mut code = 0u8;
            for (i, (dy, dx)) in NEIGHBORS.iter().enumerate() {
                let ny = (y as isize + dy) as usize;
                let nx = (x as isize + dx) as usize;
                if img[ny * w + nx] >= c {
                    code |= 1 << i;
                }
            }
            hist[code as usize] += 1;
        }
    }
    hist
}

/// χ² distance between two LBP histograms (symmetric form).
pub fn chi_square(a: &[u32; 256], b: &[u32; 256]) -> f64 {
    let mut d = 0.0;
    for i in 0..256 {
        let (x, y) = (a[i] as f64, b[i] as f64);
        if x + y > 0.0 {
            d += (x - y) * (x - y) / (x + y);
        }
    }
    d
}

/// Verifies whether two images show the same person.
///
/// # Panics
///
/// Panics if either image is not `FACE_BYTES` long.
pub fn verify(probe: &[u8], reference: &[u8]) -> bool {
    let a = lbp_histogram(probe, FACE_SIDE, FACE_SIDE);
    let b = lbp_histogram(reference, FACE_SIDE, FACE_SIDE);
    chi_square(&a, &b) < MATCH_THRESHOLD
}

/// A deterministic synthetic face database keyed by 12-byte labels.
///
/// Each person's face is a smooth pseudo-random texture derived from the
/// label, so the same label always yields the same face and different
/// labels yield LBP-distinguishable faces.
#[derive(Clone, Debug, Default)]
pub struct FaceDb;

impl FaceDb {
    /// Creates the generator.
    pub fn new() -> FaceDb {
        FaceDb
    }

    /// The canonical label for person `i`.
    pub fn label(i: u32) -> [u8; LABEL_BYTES] {
        let mut l = *b"person-00000";
        let digits = format!("{i:05}");
        l[7..12].copy_from_slice(digits.as_bytes());
        l
    }

    /// The reference face for a label.
    pub fn face(&self, label: &[u8]) -> Vec<u8> {
        let seed = label.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        let mut rng = StdRng::seed_from_u64(seed);
        // Smooth texture: coarse 8x8 grid, bilinear upsampled, slight noise.
        let mut coarse = [[0f32; 9]; 9];
        for row in coarse.iter_mut() {
            for v in row.iter_mut() {
                *v = rng.gen_range(40.0..220.0);
            }
        }
        let mut img = vec![0u8; FACE_BYTES];
        for y in 0..FACE_SIDE {
            for x in 0..FACE_SIDE {
                let (fy, fx) = (y as f32 / 4.0, x as f32 / 4.0);
                let (y0, x0) = (fy as usize, fx as usize);
                let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                let v = coarse[y0][x0] * (1.0 - dy) * (1.0 - dx)
                    + coarse[y0][x0 + 1] * (1.0 - dy) * dx
                    + coarse[y0 + 1][x0] * dy * (1.0 - dx)
                    + coarse[y0 + 1][x0 + 1] * dy * dx;
                img[y * FACE_SIDE + x] = v as u8;
            }
        }
        img
    }

    /// A "probe" photo of the same person: the reference face with mild
    /// sensor noise — still verifies as a match.
    pub fn probe(&self, label: &[u8], noise_seed: u64) -> Vec<u8> {
        let mut img = self.face(label);
        let mut rng = StdRng::seed_from_u64(noise_seed);
        for px in img.iter_mut() {
            let jitter: i16 = rng.gen_range(-1..=1);
            *px = (*px as i16 + jitter).clamp(0, 255) as u8;
        }
        img
    }
}

/// Builds a client request: `label ‖ probe image` (12 + 1024 bytes).
pub fn encode_request(label: &[u8], probe: &[u8]) -> Vec<u8> {
    assert_eq!(label.len(), LABEL_BYTES, "bad label size");
    assert_eq!(probe.len(), FACE_BYTES, "bad image size");
    let mut req = Vec::with_capacity(LABEL_BYTES + FACE_BYTES);
    req.extend_from_slice(label);
    req.extend_from_slice(probe);
    req
}

/// Splits a request back into `(label, probe)`.
///
/// Returns `None` when the request has the wrong size.
pub fn decode_request(req: &[u8]) -> Option<(&[u8], &[u8])> {
    if req.len() != LABEL_BYTES + FACE_BYTES {
        return None;
    }
    Some(req.split_at(LABEL_BYTES))
}

/// Host-centric face-verification processor: kernel input is the client
/// request concatenated with the database's reference image (the baseline
/// fetches the reference on the CPU before launching the kernel, §6.4).
#[derive(Clone, Debug, Default)]
pub struct FaceVerProcessor;

impl RequestProcessor for FaceVerProcessor {
    fn name(&self) -> &str {
        "face-verification"
    }

    fn service_time(&self, _request: &[u8]) -> Duration {
        LBP_KERNEL_TIME
    }

    fn process(&self, input: &[u8]) -> Vec<u8> {
        // input = label (12) + probe (1024) + reference (1024)
        if input.len() != LABEL_BYTES + 2 * FACE_BYTES {
            return vec![0xFF];
        }
        let probe = &input[LABEL_BYTES..LABEL_BYTES + FACE_BYTES];
        let reference = &input[LABEL_BYTES + FACE_BYTES..];
        vec![u8::from(verify(probe, reference))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_interior_pixels() {
        let img = vec![128u8; FACE_BYTES];
        let h = lbp_histogram(&img, FACE_SIDE, FACE_SIDE);
        let total: u32 = h.iter().sum();
        assert_eq!(total, ((FACE_SIDE - 2) * (FACE_SIDE - 2)) as u32);
        // Uniform image: all neighbors equal => code 0xFF everywhere.
        assert_eq!(h[255], total);
    }

    #[test]
    fn chi_square_identity_is_zero() {
        let db = FaceDb::new();
        let img = db.face(&FaceDb::label(1));
        let h = lbp_histogram(&img, FACE_SIDE, FACE_SIDE);
        assert_eq!(chi_square(&h, &h), 0.0);
    }

    #[test]
    fn same_person_verifies() {
        let db = FaceDb::new();
        let label = FaceDb::label(42);
        let reference = db.face(&label);
        let probe = db.probe(&label, 9);
        assert!(verify(&probe, &reference));
    }

    #[test]
    fn different_people_do_not_verify() {
        let db = FaceDb::new();
        let a = db.face(&FaceDb::label(1));
        let b = db.face(&FaceDb::label(2));
        assert!(!verify(&a, &b));
    }

    #[test]
    fn request_roundtrip() {
        let db = FaceDb::new();
        let label = FaceDb::label(7);
        let probe = db.probe(&label, 1);
        let req = encode_request(&label, &probe);
        let (l, p) = decode_request(&req).unwrap();
        assert_eq!(l, label);
        assert_eq!(p, &probe[..]);
        assert!(decode_request(&req[1..]).is_none());
    }

    #[test]
    fn processor_end_to_end() {
        let db = FaceDb::new();
        let label = FaceDb::label(3);
        let probe = db.probe(&label, 2);
        let reference = db.face(&label);
        let mut input = encode_request(&label, &probe);
        input.extend_from_slice(&reference);
        let p = FaceVerProcessor;
        assert_eq!(p.process(&input), vec![1]);
        // Mismatched person.
        let mut bad = encode_request(&label, &db.face(&FaceDb::label(4)));
        bad.extend_from_slice(&reference);
        assert_eq!(p.process(&bad), vec![0]);
        assert_eq!(p.process(&[0; 4]), vec![0xFF]);
    }

    #[test]
    fn faces_are_deterministic_per_label() {
        let db = FaceDb::new();
        assert_eq!(db.face(&FaceDb::label(5)), db.face(&FaceDb::label(5)));
        assert_ne!(db.face(&FaceDb::label(5)), db.face(&FaceDb::label(6)));
    }
}
