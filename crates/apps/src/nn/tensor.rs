//! A minimal dense tensor.

use std::fmt;

/// A dense, row-major `f32` tensor with up to three dimensions
/// (channels × height × width; lower-rank tensors use size-1 dims).
///
/// # Example
///
/// ```
/// use lynx_apps::nn::Tensor;
///
/// let mut t = Tensor::zeros(1, 2, 3);
/// t.set(0, 1, 2, 5.0);
/// assert_eq!(t.get(0, 1, 2), 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    c: usize,
    h: usize,
    w: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}x{}]", self.c, self.h, self.w)
    }
}

impl Tensor {
    /// A zero-filled tensor of shape `c × h × w`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(c: usize, h: usize, w: usize) -> Tensor {
        assert!(c > 0 && h > 0 && w > 0, "tensor dims must be positive");
        Tensor {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Builds a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != c * h * w`.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), c * h * w, "shape/data mismatch");
        Tensor { c, h, w, data }
    }

    /// A rank-1 tensor (vector) of length `n`.
    pub fn vector(data: Vec<f32>) -> Tensor {
        let n = data.len();
        Tensor::from_vec(1, 1, n, data)
    }

    /// Shape as `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` only for an impossible empty tensor (dims are positive).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn idx(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(
            c < self.c && y < self.h && x < self.w,
            "index out of bounds"
        );
        (c * self.h + y) * self.w + x
    }

    /// Element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index is out of bounds.
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.idx(c, y, x)]
    }

    /// Sets the element at `(c, y, x)`.
    #[inline]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        let i = self.idx(c, y, x);
        self.data[i] = v;
    }

    /// The flat data slice (row-major, channel-first).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Index of the maximum element (ties resolve to the first).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, v) in self.data.iter().enumerate().skip(1) {
            if *v > self.data[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout() {
        let t = Tensor::from_vec(2, 2, 2, (0..8).map(|i| i as f32).collect());
        assert_eq!(t.get(0, 0, 0), 0.0);
        assert_eq!(t.get(0, 0, 1), 1.0);
        assert_eq!(t.get(0, 1, 0), 2.0);
        assert_eq!(t.get(1, 0, 0), 4.0);
        assert_eq!(t.get(1, 1, 1), 7.0);
    }

    #[test]
    fn argmax_finds_peak() {
        let t = Tensor::vector(vec![0.1, 0.9, 0.3]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn argmax_tie_prefers_first() {
        let t = Tensor::vector(vec![0.5, 0.5]);
        assert_eq!(t.argmax(), 0);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_validates_shape() {
        let _ = Tensor::from_vec(2, 2, 2, vec![0.0; 7]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Tensor::zeros(0, 1, 1);
    }
}
