//! Neural-network layers (reference implementations).

use super::Tensor;

/// 2-D convolution with square kernels, stride 1 and symmetric zero
/// padding.
///
/// `weights` is `out_ch` kernels of shape `in_ch × k × k` (flattened,
/// row-major); `bias` has one entry per output channel.
///
/// # Panics
///
/// Panics if the weight/bias sizes do not match the declared geometry or
/// the padded input is smaller than the kernel.
pub fn conv2d(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out_ch: usize,
    k: usize,
    pad: usize,
) -> Tensor {
    let (in_ch, h, w) = input.shape();
    assert_eq!(weights.len(), out_ch * in_ch * k * k, "bad conv weights");
    assert_eq!(bias.len(), out_ch, "bad conv bias");
    assert!(
        h + 2 * pad >= k && w + 2 * pad >= k,
        "kernel larger than input"
    );
    let oh = h + 2 * pad - k + 1;
    let ow = w + 2 * pad - k + 1;
    let mut out = Tensor::zeros(out_ch, oh, ow);
    for oc in 0..out_ch {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias[oc];
                for ic in 0..in_ch {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = oy + ky;
                            let ix = ox + kx;
                            if iy < pad || ix < pad {
                                continue;
                            }
                            let (iy, ix) = (iy - pad, ix - pad);
                            if iy >= h || ix >= w {
                                continue;
                            }
                            let wv = weights[((oc * in_ch + ic) * k + ky) * k + kx];
                            acc += wv * input.get(ic, iy, ix);
                        }
                    }
                }
                out.set(oc, oy, ox, acc);
            }
        }
    }
    out
}

/// 2×2 average pooling with stride 2.
///
/// # Panics
///
/// Panics if height or width is odd.
pub fn avg_pool2(input: &Tensor) -> Tensor {
    let (c, h, w) = input.shape();
    assert!(h % 2 == 0 && w % 2 == 0, "avg_pool2 needs even dims");
    let mut out = Tensor::zeros(c, h / 2, w / 2);
    for ch in 0..c {
        for y in 0..h / 2 {
            for x in 0..w / 2 {
                let s = input.get(ch, 2 * y, 2 * x)
                    + input.get(ch, 2 * y, 2 * x + 1)
                    + input.get(ch, 2 * y + 1, 2 * x)
                    + input.get(ch, 2 * y + 1, 2 * x + 1);
                out.set(ch, y, x, s / 4.0);
            }
        }
    }
    out
}

/// Element-wise hyperbolic tangent (LeNet's classic activation).
pub fn tanh(input: &Tensor) -> Tensor {
    let (c, h, w) = input.shape();
    Tensor::from_vec(c, h, w, input.as_slice().iter().map(|v| v.tanh()).collect())
}

/// Element-wise rectified linear unit.
pub fn relu(input: &Tensor) -> Tensor {
    let (c, h, w) = input.shape();
    Tensor::from_vec(
        c,
        h,
        w,
        input.as_slice().iter().map(|v| v.max(0.0)).collect(),
    )
}

/// Fully connected layer: `out[i] = bias[i] + Σ_j W[i][j] · in[j]`,
/// flattening the input.
///
/// # Panics
///
/// Panics if `weights.len() != out_n * input.len()` or
/// `bias.len() != out_n`.
pub fn dense(input: &Tensor, weights: &[f32], bias: &[f32], out_n: usize) -> Tensor {
    let n = input.len();
    assert_eq!(weights.len(), out_n * n, "bad dense weights");
    assert_eq!(bias.len(), out_n, "bad dense bias");
    let x = input.as_slice();
    let mut out = vec![0.0f32; out_n];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &weights[i * n..(i + 1) * n];
        *o = bias[i] + row.iter().zip(x).map(|(a, b)| a * b).sum::<f32>();
    }
    Tensor::vector(out)
}

/// Numerically stable softmax over the flattened input.
pub fn softmax(input: &Tensor) -> Tensor {
    let x = input.as_slice();
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = x.iter().map(|v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    Tensor::vector(exps.into_iter().map(|e| e / sum).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_identity_kernel() {
        // 1x1 kernel of weight 1: output equals input.
        let input = Tensor::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let out = conv2d(&input, &[1.0], &[0.0], 1, 1, 0);
        assert_eq!(out, input);
    }

    #[test]
    fn conv_known_values() {
        // 2x2 input, 2x2 kernel of ones, no pad: single output = sum.
        let input = Tensor::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let out = conv2d(&input, &[1.0; 4], &[0.5], 1, 2, 0);
        assert_eq!(out.shape(), (1, 1, 1));
        assert_eq!(out.get(0, 0, 0), 10.5);
    }

    #[test]
    fn conv_padding_preserves_size() {
        let input = Tensor::zeros(1, 28, 28);
        let out = conv2d(&input, &[0.0; 25], &[0.0], 1, 5, 2);
        assert_eq!(out.shape(), (1, 28, 28));
    }

    #[test]
    fn conv_multi_channel_sums_contributions() {
        // Two input channels of constant 1 and 2; kernel weight 1 each.
        let mut input = Tensor::zeros(2, 1, 1);
        input.set(0, 0, 0, 1.0);
        input.set(1, 0, 0, 2.0);
        let out = conv2d(&input, &[1.0, 1.0], &[0.0], 1, 1, 0);
        assert_eq!(out.get(0, 0, 0), 3.0);
    }

    #[test]
    fn pool_averages_quads() {
        let input = Tensor::from_vec(1, 2, 2, vec![1.0, 3.0, 5.0, 7.0]);
        let out = avg_pool2(&input);
        assert_eq!(out.shape(), (1, 1, 1));
        assert_eq!(out.get(0, 0, 0), 4.0);
    }

    #[test]
    fn dense_matches_manual_dot() {
        let input = Tensor::vector(vec![1.0, 2.0]);
        // W = [[1,2],[3,4]], b = [10, 20]
        let out = dense(&input, &[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0], 2);
        assert_eq!(out.as_slice(), &[15.0, 31.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let out = softmax(&Tensor::vector(vec![1.0, 2.0, 3.0]));
        let s: f32 = out.as_slice().iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert_eq!(out.argmax(), 2);
        assert!(out.as_slice().iter().all(|&p| p > 0.0));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let out = softmax(&Tensor::vector(vec![1000.0, 1001.0]));
        assert!(out.as_slice().iter().all(|p| p.is_finite()));
        assert!((out.as_slice().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relu_clamps_negatives() {
        let out = relu(&Tensor::vector(vec![-1.0, 0.5]));
        assert_eq!(out.as_slice(), &[0.0, 0.5]);
    }

    #[test]
    fn tanh_bounds() {
        let out = tanh(&Tensor::vector(vec![-100.0, 0.0, 100.0]));
        assert_eq!(out.as_slice(), &[-1.0, 0.0, 1.0]);
    }
}
