//! Neural-network inference: tensors, layers, LeNet-5, synthetic MNIST.
//!
//! The paper's model-serving experiments (§6.3) run "written digits
//! recognition using the standard LeNet Convolutional Neural Network
//! architecture": clients send 28×28 grayscale images, the server returns
//! the recognized digit, with the whole network executing on the GPU as a
//! persistent kernel spawning per-layer child kernels via dynamic
//! parallelism. This module implements the full forward pass in Rust so
//! the simulated GPU produces *real* classifications.

mod layers;
mod lenet;
mod mnist;
mod tensor;

pub use layers::{avg_pool2, conv2d, dense, relu, softmax, tanh};
pub use lenet::{LeNet, LeNetProcessor, LENET_KERNEL_TIME, LENET_LAUNCHES};
pub use mnist::{DigitGenerator, IMAGE_BYTES, IMAGE_SIDE};
pub use tensor::Tensor;
