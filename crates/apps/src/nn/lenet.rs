//! LeNet-5 digit recognition (§6.3).

use std::fmt;
use std::time::Duration;

use lynx_device::RequestProcessor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{avg_pool2, conv2d, dense, softmax, tanh, Tensor};
use super::{IMAGE_BYTES, IMAGE_SIDE};

/// Measured LeNet inference time on the reference GPU. The paper reports a
/// theoretical single-GPU maximum of 3.6 Kreq/s (§6.3) ⇒ ≈278 µs per
/// request of pure kernel time.
pub const LENET_KERNEL_TIME: Duration = Duration::from_micros(278);

/// Number of fused TVM kernels (one per layer group): two conv+pool
/// blocks, three dense layers and the classifier epilogue, launched
/// per-request — 8 dependent launches on the host-centric path, 8 dynamic-
/// parallelism spawns under Lynx.
pub const LENET_LAUNCHES: u32 = 8;

struct ConvParams {
    w: Vec<f32>,
    b: Vec<f32>,
    out_ch: usize,
    k: usize,
    pad: usize,
}

struct DenseParams {
    w: Vec<f32>,
    b: Vec<f32>,
    out_n: usize,
}

/// The LeNet-5 network: conv(6@5×5, pad 2) → tanh → pool → conv(16@5×5)
/// → tanh → pool → dense 120 → tanh → dense 84 → tanh → dense 10 →
/// softmax.
///
/// Weights are generated from a seeded PRNG (no training data ships with
/// the repository); classification is therefore arbitrary but fully
/// deterministic, which is what the timing experiments need. Use
/// [`LeNet::infer`] for the class-probability vector.
pub struct LeNet {
    conv1: ConvParams,
    conv2: ConvParams,
    fc1: DenseParams,
    fc2: DenseParams,
    fc3: DenseParams,
    seed: u64,
}

impl fmt::Debug for LeNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LeNet")
            .field("seed", &self.seed)
            .field("params", &self.param_count())
            .finish()
    }
}

impl LeNet {
    /// Builds the network with weights drawn from `seed`.
    pub fn new(seed: u64) -> LeNet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut draw = |n: usize, fan_in: usize| -> Vec<f32> {
            let scale = (1.0 / fan_in as f32).sqrt();
            (0..n).map(|_| rng.gen_range(-scale..scale)).collect()
        };
        LeNet {
            conv1: ConvParams {
                w: draw(6 * 5 * 5, 25),
                b: draw(6, 25),
                out_ch: 6,
                k: 5,
                pad: 2,
            },
            conv2: ConvParams {
                w: draw(16 * 6 * 5 * 5, 150),
                b: draw(16, 150),
                out_ch: 16,
                k: 5,
                pad: 0,
            },
            fc1: DenseParams {
                w: draw(120 * 400, 400),
                b: draw(120, 400),
                out_n: 120,
            },
            fc2: DenseParams {
                w: draw(84 * 120, 120),
                b: draw(84, 120),
                out_n: 84,
            },
            fc3: DenseParams {
                w: draw(10 * 84, 84),
                b: draw(10, 84),
                out_n: 10,
            },
            seed,
        }
    }

    /// Total trainable parameters (the classic LeNet-5 count).
    pub fn param_count(&self) -> usize {
        self.conv1.w.len()
            + self.conv1.b.len()
            + self.conv2.w.len()
            + self.conv2.b.len()
            + self.fc1.w.len()
            + self.fc1.b.len()
            + self.fc2.w.len()
            + self.fc2.b.len()
            + self.fc3.w.len()
            + self.fc3.b.len()
    }

    /// Runs the forward pass on a 28×28 grayscale image (one byte per
    /// pixel), returning the 10 class probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `image.len() != 784`.
    pub fn infer(&self, image: &[u8]) -> [f32; 10] {
        assert_eq!(image.len(), IMAGE_BYTES, "LeNet expects a 28x28 image");
        let input = Tensor::from_vec(
            1,
            IMAGE_SIDE,
            IMAGE_SIDE,
            image.iter().map(|&p| p as f32 / 255.0).collect(),
        );
        let c1 = tanh(&conv2d(
            &input,
            &self.conv1.w,
            &self.conv1.b,
            self.conv1.out_ch,
            self.conv1.k,
            self.conv1.pad,
        ));
        let p1 = avg_pool2(&c1);
        let c2 = tanh(&conv2d(
            &p1,
            &self.conv2.w,
            &self.conv2.b,
            self.conv2.out_ch,
            self.conv2.k,
            self.conv2.pad,
        ));
        let p2 = avg_pool2(&c2);
        debug_assert_eq!(p2.len(), 400);
        let f1 = tanh(&dense(&p2, &self.fc1.w, &self.fc1.b, self.fc1.out_n));
        let f2 = tanh(&dense(&f1, &self.fc2.w, &self.fc2.b, self.fc2.out_n));
        let logits = dense(&f2, &self.fc3.w, &self.fc3.b, self.fc3.out_n);
        let probs = softmax(&logits);
        let mut out = [0.0f32; 10];
        out.copy_from_slice(probs.as_slice());
        out
    }

    /// Returns the most likely digit for an image.
    ///
    /// # Panics
    ///
    /// Panics if `image.len() != 784`.
    pub fn classify(&self, image: &[u8]) -> u8 {
        let probs = self.infer(image);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, _)| i as u8)
            .expect("ten classes")
    }
}

/// [`RequestProcessor`] wrapper: request = 784-byte image, response = one
/// byte carrying the recognized digit.
pub struct LeNetProcessor {
    net: LeNet,
}

impl fmt::Debug for LeNetProcessor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LeNetProcessor").finish_non_exhaustive()
    }
}

impl LeNetProcessor {
    /// Creates the inference server logic with model weights from `seed`.
    pub fn new(seed: u64) -> LeNetProcessor {
        LeNetProcessor {
            net: LeNet::new(seed),
        }
    }
}

impl RequestProcessor for LeNetProcessor {
    fn name(&self) -> &str {
        "lenet"
    }

    fn service_time(&self, _request: &[u8]) -> Duration {
        LENET_KERNEL_TIME
    }

    fn process(&self, request: &[u8]) -> Vec<u8> {
        if request.len() != IMAGE_BYTES {
            return vec![0xFF]; // malformed request marker
        }
        vec![self.net.classify(request)]
    }

    fn launches(&self) -> u32 {
        LENET_LAUNCHES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::DigitGenerator;

    #[test]
    fn parameter_count_matches_lenet5() {
        // Classic LeNet-5: 61,706 parameters.
        assert_eq!(LeNet::new(0).param_count(), 61_706);
    }

    #[test]
    fn inference_is_deterministic() {
        let net = LeNet::new(7);
        let mut gen = DigitGenerator::new(3);
        let img = gen.image(5);
        assert_eq!(net.infer(&img), net.infer(&img));
        assert_eq!(LeNet::new(7).infer(&img), net.infer(&img));
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let net = LeNet::new(1);
        let mut gen = DigitGenerator::new(1);
        for d in 0..10 {
            let p = net.infer(&gen.image(d));
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn different_images_can_differ() {
        let net = LeNet::new(1);
        let mut gen = DigitGenerator::new(1);
        let a = net.infer(&gen.image(0));
        let b = net.infer(&gen.image(8));
        assert_ne!(a, b);
    }

    #[test]
    fn processor_roundtrip() {
        let p = LeNetProcessor::new(0);
        let mut gen = DigitGenerator::new(0);
        let img = gen.image(3);
        let resp = p.process(&img);
        assert_eq!(resp.len(), 1);
        assert!(resp[0] < 10);
        assert_eq!(p.launches(), 8);
        assert_eq!(p.service_time(&img), LENET_KERNEL_TIME);
    }

    #[test]
    fn malformed_request_flagged() {
        let p = LeNetProcessor::new(0);
        assert_eq!(p.process(&[0; 10]), vec![0xFF]);
    }

    #[test]
    #[should_panic(expected = "28x28")]
    fn wrong_image_size_panics() {
        LeNet::new(0).classify(&[0; 100]);
    }
}
