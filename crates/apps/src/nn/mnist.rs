//! Synthetic MNIST-style digit images.
//!
//! The paper's clients send "28×28 grayscale images from the standard
//! MNIST dataset" (§6.3). The dataset itself does not ship with this
//! repository, so [`DigitGenerator`] synthesizes deterministic
//! seven-segment-style digit bitmaps with pixel noise — structurally
//! similar inputs (same size, same value range, distinct per class) that
//! exercise the identical code path.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length in pixels.
pub const IMAGE_SIDE: usize = 28;

/// Bytes per image (one grayscale byte per pixel).
pub const IMAGE_BYTES: usize = IMAGE_SIDE * IMAGE_SIDE;

/// Segment layout of each digit 0–9 in a seven-segment display:
/// `[top, top-left, top-right, middle, bottom-left, bottom-right, bottom]`.
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, false, true, true, true],     // 0
    [false, false, true, false, false, true, false], // 1
    [true, false, true, true, true, false, true],    // 2
    [true, false, true, true, false, true, true],    // 3
    [false, true, true, true, false, true, false],   // 4
    [true, true, false, true, false, true, true],    // 5
    [true, true, false, true, true, true, true],     // 6
    [true, false, true, false, false, true, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Deterministic generator of digit images.
///
/// # Example
///
/// ```
/// use lynx_apps::nn::{DigitGenerator, IMAGE_BYTES};
///
/// let mut gen = DigitGenerator::new(42);
/// let img = gen.image(7);
/// assert_eq!(img.len(), IMAGE_BYTES);
/// ```
#[derive(Debug)]
pub struct DigitGenerator {
    rng: StdRng,
}

impl DigitGenerator {
    /// Creates a generator whose noise stream derives from `seed`.
    pub fn new(seed: u64) -> DigitGenerator {
        DigitGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Renders digit `d` (0–9) with random background noise.
    ///
    /// # Panics
    ///
    /// Panics if `d > 9`.
    pub fn image(&mut self, d: u8) -> Vec<u8> {
        assert!(d <= 9, "digits are 0-9");
        let mut img = vec![0u8; IMAGE_BYTES];
        // Low-amplitude background noise.
        for px in img.iter_mut() {
            *px = self.rng.gen_range(0..24);
        }
        let seg = SEGMENTS[d as usize];
        let stroke = 3usize;
        let (x0, x1) = (7usize, 20usize);
        let (y0, ym, y1) = (4usize, 13usize, 22usize);
        let hline = |img: &mut [u8], y: usize| {
            for yy in y..y + stroke {
                for x in x0..=x1 {
                    img[yy * IMAGE_SIDE + x] = 230;
                }
            }
        };
        let vline = |img: &mut [u8], x: usize, ya: usize, yb: usize| {
            for y in ya..=yb {
                for xx in x..x + stroke {
                    img[y * IMAGE_SIDE + xx] = 230;
                }
            }
        };
        if seg[0] {
            hline(&mut img, y0);
        }
        if seg[3] {
            hline(&mut img, ym);
        }
        if seg[6] {
            hline(&mut img, y1);
        }
        if seg[1] {
            vline(&mut img, x0, y0, ym);
        }
        if seg[2] {
            vline(&mut img, x1 - stroke + 1, y0, ym);
        }
        if seg[4] {
            vline(&mut img, x0, ym, y1);
        }
        if seg[5] {
            vline(&mut img, x1 - stroke + 1, ym, y1);
        }
        img
    }

    /// A batch of images cycling through all ten digits.
    pub fn batch(&mut self, n: usize) -> Vec<(u8, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let d = (i % 10) as u8;
                (d, self.image(d))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_have_correct_size_and_range() {
        let mut gen = DigitGenerator::new(0);
        for d in 0..10 {
            let img = gen.image(d);
            assert_eq!(img.len(), IMAGE_BYTES);
            assert!(img.iter().any(|&p| p > 200), "digit {d} has strokes");
        }
    }

    #[test]
    fn digit_shapes_differ() {
        let mut gen = DigitGenerator::new(0);
        // Strip noise by thresholding; shapes of 1 and 8 must differ.
        let a: Vec<bool> = gen.image(1).iter().map(|&p| p > 128).collect();
        let b: Vec<bool> = gen.image(8).iter().map(|&p| p > 128).collect();
        assert_ne!(a, b);
        // 8 lights every segment: strictly more lit pixels than 1.
        let lit = |v: &[bool]| v.iter().filter(|&&x| x).count();
        assert!(lit(&b) > lit(&a) * 2);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = DigitGenerator::new(5).image(3);
        let b = DigitGenerator::new(5).image(3);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_cycles_digits() {
        let mut gen = DigitGenerator::new(1);
        let batch = gen.batch(12);
        assert_eq!(batch[0].0, 0);
        assert_eq!(batch[9].0, 9);
        assert_eq!(batch[10].0, 0);
    }

    #[test]
    #[should_panic(expected = "0-9")]
    fn out_of_range_digit_panics() {
        DigitGenerator::new(0).image(10);
    }
}
