//! AES-128 block cipher (software implementation, FIPS-197).
//!
//! The §6.2 secure-computing server on the Intel VCA "receives an
//! AES-encrypted message (4 bytes) via Lynx, decrypts it, multiplies it by
//! a constant, encrypts it and sends the result back", all inside an SGX
//! enclave. This module provides the cipher and that exact enclave
//! computation.

use std::fmt;
use std::time::Duration;

use lynx_device::RequestProcessor;

/// E3-core time of one decrypt + multiply + encrypt inside the enclave.
pub const SGX_COMPUTE_TIME: Duration = Duration::from_micros(3);

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

#[inline]
fn xtime(a: u8) -> u8 {
    (a << 1) ^ if a & 0x80 != 0 { 0x1b } else { 0 }
}

#[inline]
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// AES-128 with a fixed key.
///
/// # Example
///
/// ```
/// use lynx_apps::aes::Aes128;
///
/// let aes = Aes128::new([0u8; 16]);
/// let pt = *b"sixteen byte msg";
/// let ct = aes.encrypt_block(pt);
/// assert_eq!(aes.decrypt_block(ct), pt);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Aes128 { key: <redacted> }")
    }
}

impl Aes128 {
    /// Expands `key` into the round-key schedule.
    pub fn new(key: [u8; 16]) -> Aes128 {
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in t.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: byte (row r, col c) at index c*4 + r.
        for r in 1..4 {
            let mut row = [0u8; 4];
            for c in 0..4 {
                row[c] = state[c * 4 + r];
            }
            row.rotate_left(r);
            for c in 0..4 {
                state[c * 4 + r] = row[c];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let mut row = [0u8; 4];
            for c in 0..4 {
                row[c] = state[c * 4 + r];
            }
            row.rotate_right(r);
            for c in 0..4 {
                state[c * 4 + r] = row[c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col: [u8; 4] = state[c * 4..c * 4 + 4].try_into().expect("4 bytes");
            state[c * 4] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
            state[c * 4 + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
            state[c * 4 + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
            state[c * 4 + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col: [u8; 4] = state[c * 4..c * 4 + 4].try_into().expect("4 bytes");
            state[c * 4] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[c * 4 + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[c * 4 + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[c * 4 + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let mut s = block;
        Self::add_round_key(&mut s, &self.round_keys[0]);
        for round in 1..10 {
            for b in s.iter_mut() {
                *b = SBOX[*b as usize];
            }
            Self::shift_rows(&mut s);
            Self::mix_columns(&mut s);
            Self::add_round_key(&mut s, &self.round_keys[round]);
        }
        for b in s.iter_mut() {
            *b = SBOX[*b as usize];
        }
        Self::shift_rows(&mut s);
        Self::add_round_key(&mut s, &self.round_keys[10]);
        s
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let inv = inv_sbox();
        let mut s = block;
        Self::add_round_key(&mut s, &self.round_keys[10]);
        for round in (1..10).rev() {
            Self::inv_shift_rows(&mut s);
            for b in s.iter_mut() {
                *b = inv[*b as usize];
            }
            Self::add_round_key(&mut s, &self.round_keys[round]);
            Self::inv_mix_columns(&mut s);
        }
        Self::inv_shift_rows(&mut s);
        for b in s.iter_mut() {
            *b = inv[*b as usize];
        }
        Self::add_round_key(&mut s, &self.round_keys[0]);
        s
    }
}

/// The §6.2 enclave computation: decrypt a 16-byte block whose first four
/// bytes are a little-endian `u32`, multiply it by `factor`, re-encrypt.
///
/// Also usable as a [`RequestProcessor`] so the same logic can run behind
/// either the Lynx or the baseline network path.
#[derive(Clone, Debug)]
pub struct SgxMultiplyService {
    aes: Aes128,
    factor: u32,
}

impl SgxMultiplyService {
    /// Creates the service with the enclave-held `key` and multiplier.
    pub fn new(key: [u8; 16], factor: u32) -> SgxMultiplyService {
        SgxMultiplyService {
            aes: Aes128::new(key),
            factor,
        }
    }

    /// Encrypts a plaintext value for sending (client side).
    pub fn seal(&self, value: u32) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[..4].copy_from_slice(&value.to_le_bytes());
        self.aes.encrypt_block(block)
    }

    /// Decrypts a sealed result (client side).
    pub fn open(&self, block: [u8; 16]) -> u32 {
        let pt = self.aes.decrypt_block(block);
        u32::from_le_bytes(pt[..4].try_into().expect("4 bytes"))
    }

    /// The enclave computation itself.
    pub fn compute(&self, sealed: [u8; 16]) -> [u8; 16] {
        let v = self.open(sealed);
        self.seal(v.wrapping_mul(self.factor))
    }
}

impl RequestProcessor for SgxMultiplyService {
    fn name(&self) -> &str {
        "sgx-multiply"
    }

    fn service_time(&self, _request: &[u8]) -> Duration {
        SGX_COMPUTE_TIME
    }

    fn process(&self, request: &[u8]) -> Vec<u8> {
        match <[u8; 16]>::try_from(request) {
            Ok(block) => self.compute(block).to_vec(),
            Err(_) => vec![0xFF],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_197_appendix_b_vector() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        let aes = Aes128::new(key);
        assert_eq!(aes.encrypt_block(pt), expect);
        assert_eq!(aes.decrypt_block(expect), pt);
    }

    #[test]
    fn roundtrip_many_blocks() {
        let aes = Aes128::new([7; 16]);
        for i in 0..64u8 {
            let block = [i; 16];
            assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
        }
    }

    #[test]
    fn sgx_service_multiplies_under_seal() {
        let svc = SgxMultiplyService::new([1; 16], 3);
        let sealed = svc.seal(14);
        let result = svc.compute(sealed);
        assert_eq!(svc.open(result), 42);
    }

    #[test]
    fn processor_handles_wire_format() {
        let svc = SgxMultiplyService::new([9; 16], 5);
        let req = svc.seal(8).to_vec();
        let resp = svc.process(&req);
        assert_eq!(svc.open(resp.try_into().unwrap()), 40);
        assert_eq!(svc.process(&[0; 3]), vec![0xFF]);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let svc = SgxMultiplyService::new([3; 16], 1);
        let sealed = svc.seal(0xdead_beef);
        assert_ne!(&sealed[..4], &0xdead_beefu32.to_le_bytes());
    }
}
