//! A memcached-style key-value store (§6.3's efficiency comparison and the
//! §6.4 database tier).
//!
//! [`KvStore`] is a real in-memory store: a hash index over an intrusive
//! doubly-linked LRU list with byte-budget eviction, plus the compact
//! binary request/response protocol the simulated servers speak.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// CPU work of a GET on a Xeon core. With the VMA UDP stack (~2.2 µs
/// rx+tx) this yields ≈250 Ktps per core, the per-core memcached
/// throughput of Figure 9.
pub const KV_GET_WORK: Duration = Duration::from_nanos(1_800);

/// CPU work of a SET on a Xeon core.
pub const KV_SET_WORK: Duration = Duration::from_nanos(2_200);

const NIL: usize = usize::MAX;

struct Node {
    key: Vec<u8>,
    val: Vec<u8>,
    prev: usize,
    next: usize,
}

/// An LRU key-value store with a byte-capacity budget.
///
/// # Example
///
/// ```
/// use lynx_apps::kv::KvStore;
///
/// let mut kv = KvStore::new(1024);
/// kv.set(b"name".to_vec(), b"lynx".to_vec());
/// assert_eq!(kv.get(b"name"), Some(&b"lynx"[..]));
/// assert_eq!(kv.get(b"missing"), None);
/// ```
pub struct KvStore {
    index: HashMap<Vec<u8>, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl fmt::Debug for KvStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvStore")
            .field("entries", &self.index.len())
            .field("bytes", &self.bytes)
            .field("capacity", &self.capacity)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish()
    }
}

impl KvStore {
    /// Creates a store evicting beyond `capacity` bytes of key+value data.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> KvStore {
        assert!(capacity > 0, "capacity must be positive");
        KvStore {
            index: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Bytes currently stored (keys + values).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// `(hits, misses, evictions)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.nodes[i].prev, self.nodes[i].next);
        if p != NIL {
            self.nodes[p].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.nodes[n].prev = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks a key up, refreshing its recency.
    pub fn get(&mut self, key: &[u8]) -> Option<&[u8]> {
        match self.index.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(&self.nodes[i].val)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts or replaces a value, evicting least-recently-used entries
    /// to stay within the byte budget. Returns the previous value, if any.
    ///
    /// # Panics
    ///
    /// Panics if a single entry exceeds the store capacity.
    pub fn set(&mut self, key: Vec<u8>, val: Vec<u8>) -> Option<Vec<u8>> {
        let entry_bytes = key.len() + val.len();
        assert!(
            entry_bytes <= self.capacity,
            "entry of {entry_bytes} bytes exceeds capacity {}",
            self.capacity
        );
        let old = if let Some(&i) = self.index.get(&key) {
            self.unlink(i);
            self.bytes -= self.nodes[i].key.len() + self.nodes[i].val.len();
            let old = std::mem::take(&mut self.nodes[i].val);
            self.nodes[i].val = val;
            self.bytes += entry_bytes;
            self.push_front(i);
            Some(old)
        } else {
            let i = match self.free.pop() {
                Some(i) => {
                    self.nodes[i] = Node {
                        key: key.clone(),
                        val,
                        prev: NIL,
                        next: NIL,
                    };
                    i
                }
                None => {
                    self.nodes.push(Node {
                        key: key.clone(),
                        val,
                        prev: NIL,
                        next: NIL,
                    });
                    self.nodes.len() - 1
                }
            };
            self.index.insert(key, i);
            self.bytes += entry_bytes;
            self.push_front(i);
            None
        };
        while self.bytes > self.capacity {
            self.evict_lru();
        }
        old
    }

    fn evict_lru(&mut self) {
        let i = self.tail;
        assert!(i != NIL, "over budget with empty LRU list");
        self.unlink(i);
        let key = std::mem::take(&mut self.nodes[i].key);
        let val = std::mem::take(&mut self.nodes[i].val);
        self.bytes -= key.len() + val.len();
        self.index.remove(&key);
        self.free.push(i);
        self.evictions += 1;
    }
}

/// A protocol request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Fetch a value.
    Get {
        /// Key to look up.
        key: Vec<u8>,
    },
    /// Store a value.
    Set {
        /// Key to store under.
        key: Vec<u8>,
        /// Value bytes.
        val: Vec<u8>,
    },
}

/// A protocol response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// GET hit with the value.
    Value(Vec<u8>),
    /// GET miss.
    Miss,
    /// SET acknowledged.
    Stored,
    /// Request could not be parsed.
    BadRequest,
}

impl Request {
    /// Serializes the request.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Get { key } => {
                let mut b = vec![0x01];
                b.extend_from_slice(&(key.len() as u16).to_le_bytes());
                b.extend_from_slice(key);
                b
            }
            Request::Set { key, val } => {
                let mut b = vec![0x02];
                b.extend_from_slice(&(key.len() as u16).to_le_bytes());
                b.extend_from_slice(&(val.len() as u32).to_le_bytes());
                b.extend_from_slice(key);
                b.extend_from_slice(val);
                b
            }
        }
    }

    /// Parses a request; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Request> {
        match buf.first()? {
            0x01 => {
                let klen = u16::from_le_bytes(buf.get(1..3)?.try_into().ok()?) as usize;
                let key = buf.get(3..3 + klen)?.to_vec();
                (buf.len() == 3 + klen).then_some(Request::Get { key })
            }
            0x02 => {
                let klen = u16::from_le_bytes(buf.get(1..3)?.try_into().ok()?) as usize;
                let vlen = u32::from_le_bytes(buf.get(3..7)?.try_into().ok()?) as usize;
                let key = buf.get(7..7 + klen)?.to_vec();
                let val = buf.get(7 + klen..7 + klen + vlen)?.to_vec();
                (buf.len() == 7 + klen + vlen).then_some(Request::Set { key, val })
            }
            _ => None,
        }
    }

    /// CPU work this request costs the server (Xeon-relative).
    pub fn work(&self) -> Duration {
        match self {
            Request::Get { .. } => KV_GET_WORK,
            Request::Set { .. } => KV_SET_WORK,
        }
    }
}

impl Response {
    /// Serializes the response.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Value(v) => {
                let mut b = vec![0x01];
                b.extend_from_slice(&(v.len() as u32).to_le_bytes());
                b.extend_from_slice(v);
                b
            }
            Response::Miss => vec![0x00],
            Response::Stored => vec![0x02],
            Response::BadRequest => vec![0xFF],
        }
    }

    /// Parses a response; `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Response> {
        match buf.first()? {
            0x00 => (buf.len() == 1).then_some(Response::Miss),
            0x02 => (buf.len() == 1).then_some(Response::Stored),
            0xFF => (buf.len() == 1).then_some(Response::BadRequest),
            0x01 => {
                let vlen = u32::from_le_bytes(buf.get(1..5)?.try_into().ok()?) as usize;
                let v = buf.get(5..5 + vlen)?.to_vec();
                (buf.len() == 5 + vlen).then_some(Response::Value(v))
            }
            _ => None,
        }
    }
}

/// Executes one decoded request against a store.
pub fn execute(store: &mut KvStore, req: &Request) -> Response {
    match req {
        Request::Get { key } => match store.get(key) {
            Some(v) => Response::Value(v.to_vec()),
            None => Response::Miss,
        },
        Request::Set { key, val } => {
            store.set(key.clone(), val.clone());
            Response::Stored
        }
    }
}

/// Convenience: execute a wire-format request, producing a wire response.
pub fn execute_wire(store: &mut KvStore, buf: &[u8]) -> Vec<u8> {
    match Request::decode(buf) {
        Some(req) => execute(store, &req).encode(),
        None => Response::BadRequest.encode(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut kv = KvStore::new(1 << 16);
        assert_eq!(kv.set(b"k".to_vec(), b"v1".to_vec()), None);
        assert_eq!(kv.set(b"k".to_vec(), b"v2".to_vec()), Some(b"v1".to_vec()));
        assert_eq!(kv.get(b"k"), Some(&b"v2"[..]));
        assert_eq!(kv.counters().0, 1);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let mut kv = KvStore::new(6); // fits three 2-byte entries
        kv.set(b"a".to_vec(), b"1".to_vec());
        kv.set(b"b".to_vec(), b"2".to_vec());
        kv.set(b"c".to_vec(), b"3".to_vec());
        // Touch "a" so "b" is now the LRU.
        kv.get(b"a");
        kv.set(b"d".to_vec(), b"4".to_vec());
        assert_eq!(kv.get(b"b"), None);
        assert!(kv.get(b"a").is_some());
        assert!(kv.get(b"c").is_some());
        assert!(kv.get(b"d").is_some());
        assert_eq!(kv.counters().2, 1);
    }

    #[test]
    fn byte_budget_respected() {
        let mut kv = KvStore::new(100);
        for i in 0..50u8 {
            kv.set(vec![i], vec![0; 9]);
            assert!(kv.bytes() <= 100);
        }
        assert!(kv.len() <= 10);
    }

    #[test]
    fn replacing_updates_bytes() {
        let mut kv = KvStore::new(100);
        kv.set(b"key".to_vec(), vec![0; 50]);
        kv.set(b"key".to_vec(), vec![0; 10]);
        assert_eq!(kv.bytes(), 13);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn protocol_roundtrip() {
        for req in [
            Request::Get {
                key: b"k1".to_vec(),
            },
            Request::Set {
                key: b"k2".to_vec(),
                val: vec![9; 300],
            },
        ] {
            assert_eq!(Request::decode(&req.encode()), Some(req));
        }
        for resp in [
            Response::Value(vec![1, 2, 3]),
            Response::Miss,
            Response::Stored,
            Response::BadRequest,
        ] {
            assert_eq!(Response::decode(&resp.encode()), Some(resp));
        }
    }

    #[test]
    fn malformed_requests_rejected() {
        assert_eq!(Request::decode(&[]), None);
        assert_eq!(Request::decode(&[0x03]), None);
        assert_eq!(Request::decode(&[0x01, 10, 0, b'x']), None); // short key
        let mut kv = KvStore::new(64);
        assert_eq!(execute_wire(&mut kv, &[0x07]), vec![0xFF]);
    }

    #[test]
    fn execute_wire_end_to_end() {
        let mut kv = KvStore::new(1 << 12);
        let set = Request::Set {
            key: b"face-7".to_vec(),
            val: vec![42; 16],
        };
        assert_eq!(execute_wire(&mut kv, &set.encode()), vec![0x02]);
        let get = Request::Get {
            key: b"face-7".to_vec(),
        };
        let resp = Response::decode(&execute_wire(&mut kv, &get.encode())).unwrap();
        assert_eq!(resp, Response::Value(vec![42; 16]));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_entry_panics() {
        KvStore::new(4).set(vec![0; 8], vec![]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_byte_budget_is_rejected() {
        KvStore::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn value_larger_than_whole_budget_panics() {
        // The key alone fits; key + value exceeds the full budget.
        KvStore::new(16).set(b"k".to_vec(), vec![0; 16]);
    }

    #[test]
    fn same_key_shrink_and_grow_keeps_byte_accounting() {
        let mut kv = KvStore::new(64);
        kv.set(b"key".to_vec(), vec![0; 40]);
        assert_eq!(kv.bytes(), 43);
        // Shrink: accounting must drop, not accumulate.
        kv.set(b"key".to_vec(), vec![0; 4]);
        assert_eq!(kv.bytes(), 7);
        // Grow back to near the budget: still one entry, no eviction.
        kv.set(b"key".to_vec(), vec![0; 60]);
        assert_eq!(kv.bytes(), 63);
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.counters().2, 0, "replacing in place never evicts");
        // Growing the lone entry to exactly the budget is fine too.
        kv.set(b"key".to_vec(), vec![0; 61]);
        assert_eq!(kv.bytes(), 64);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn repeated_same_key_set_never_evicts_other_entries() {
        let mut kv = KvStore::new(32);
        kv.set(b"other".to_vec(), vec![1; 5]);
        for size in [1usize, 10, 3, 18, 1] {
            kv.set(b"k".to_vec(), vec![0; size]);
            assert!(kv.bytes() <= 32);
            assert!(kv.get(b"other").is_some(), "size {size} evicted `other`");
        }
        assert_eq!(kv.counters().2, 0);
    }

    mod lru_order_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Eviction order matches a reference model: on every SET
            /// over budget, the least-recently-used entries (GETs and
            /// SET-replacements refresh recency) disappear first, and the
            /// byte accounting matches the surviving reference entries.
            #[test]
            fn eviction_order_matches_reference_lru(
                ops in proptest::collection::vec(
                    (0u8..16, any::<bool>(), 1usize..24), 1..200)
            ) {
                const CAP: usize = 64;
                let mut kv = KvStore::new(CAP);
                // Reference: Vec of (key, val_len), front = most recent.
                let mut model: Vec<(Vec<u8>, usize)> = Vec::new();
                for (k, is_set, len) in ops {
                    let key = vec![b'a' + k];
                    if is_set {
                        kv.set(key.clone(), vec![0; len]);
                        model.retain(|(mk, _)| *mk != key);
                        model.insert(0, (key, len));
                        let mut used: usize =
                            model.iter().map(|(mk, l)| mk.len() + l).sum();
                        while used > CAP {
                            let (ek, el) = model.pop().expect("over budget implies entries");
                            used -= ek.len() + el;
                        }
                    } else {
                        let hit = kv.get(&key).is_some();
                        let pos = model.iter().position(|(mk, _)| *mk == key);
                        prop_assert_eq!(hit, pos.is_some());
                        if let Some(p) = pos {
                            let e = model.remove(p);
                            model.insert(0, e);
                        }
                    }
                    let model_bytes: usize =
                        model.iter().map(|(mk, l)| mk.len() + l).sum();
                    prop_assert_eq!(kv.bytes(), model_bytes);
                    prop_assert_eq!(kv.len(), model.len());
                }
                // Final membership check without disturbing recency.
                for (mk, l) in &model {
                    prop_assert_eq!(kv.get(mk).map(<[u8]>::len), Some(*l));
                }
            }
        }
    }
}
