//! The §3.2 motivation microbenchmark pair: a GPU vector-scale server and
//! its cache-filling matrix-product noisy neighbor.

use std::time::Duration;

use lynx_device::RequestProcessor;

/// Elements per request ("Each request comprises 256 integers").
pub const VEC_ELEMS: usize = 256;

/// Request payload size in bytes.
pub const VEC_BYTES: usize = VEC_ELEMS * 4;

/// GPU kernel time of one vector-scale request. With the host-centric
/// 30 µs management overhead this lands the baseline's quiet p99 at the
/// paper's 0.13 ms.
pub const VECSCALE_KERNEL_TIME: Duration = Duration::from_micros(100);

/// Side of the noisy neighbor's matrix ("Matrix product of two integer
/// matrices of size 1140×1140, that fully occupies the Last Level Cache").
pub const NEIGHBOR_MATRIX_SIDE: usize = 1140;

/// Xeon-core time of one neighbor matrix product iteration (1140³ MACs).
pub const NEIGHBOR_ITERATION: Duration = Duration::from_millis(1_200);

/// Multiplies each element of a 256-integer little-endian vector by
/// `factor`.
///
/// Returns `None` when the payload has the wrong size.
pub fn scale_vec(payload: &[u8], factor: i32) -> Option<Vec<u8>> {
    if payload.len() != VEC_BYTES {
        return None;
    }
    let mut out = Vec::with_capacity(VEC_BYTES);
    for chunk in payload.chunks_exact(4) {
        let v = i32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        out.extend_from_slice(&v.wrapping_mul(factor).to_le_bytes());
    }
    Some(out)
}

/// Builds a request payload from 256 integers.
///
/// # Panics
///
/// Panics if `values.len() != 256`.
pub fn encode_vec(values: &[i32]) -> Vec<u8> {
    assert_eq!(values.len(), VEC_ELEMS, "expected 256 integers");
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Parses a payload back into integers; `None` on bad size.
pub fn decode_vec(payload: &[u8]) -> Option<Vec<i32>> {
    if payload.len() != VEC_BYTES {
        return None;
    }
    Some(
        payload
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect(),
    )
}

/// Naive integer matrix product (functional reference for the neighbor).
///
/// # Panics
///
/// Panics if the slices are not `n × n`.
pub fn matmul_i32(a: &[i32], b: &[i32], n: usize) -> Vec<i32> {
    assert_eq!(a.len(), n * n, "a is not n x n");
    assert_eq!(b.len(), n * n, "b is not n x n");
    let mut c = vec![0i32; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] = c[i * n + j].wrapping_add(aik.wrapping_mul(b[k * n + j]));
            }
        }
    }
    c
}

/// The vector-scale server kernel as a [`RequestProcessor`].
#[derive(Clone, Copy, Debug)]
pub struct VecScaleProcessor {
    factor: i32,
}

impl VecScaleProcessor {
    /// Creates the processor with the multiplication constant.
    pub fn new(factor: i32) -> VecScaleProcessor {
        VecScaleProcessor { factor }
    }
}

impl Default for VecScaleProcessor {
    fn default() -> Self {
        VecScaleProcessor::new(3)
    }
}

impl RequestProcessor for VecScaleProcessor {
    fn name(&self) -> &str {
        "vector-scale"
    }

    fn service_time(&self, _request: &[u8]) -> Duration {
        VECSCALE_KERNEL_TIME
    }

    fn process(&self, request: &[u8]) -> Vec<u8> {
        scale_vec(request, self.factor).unwrap_or_else(|| vec![0xFF])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_roundtrip() {
        let vals: Vec<i32> = (0..256).map(|i| i - 128).collect();
        let req = encode_vec(&vals);
        let resp = scale_vec(&req, 3).unwrap();
        let out = decode_vec(&resp).unwrap();
        for (o, v) in out.iter().zip(&vals) {
            assert_eq!(*o, v * 3);
        }
    }

    #[test]
    fn wrong_size_rejected() {
        assert!(scale_vec(&[0; 100], 2).is_none());
        assert!(decode_vec(&[0; 7]).is_none());
    }

    #[test]
    fn wrapping_multiplication() {
        let mut vals = vec![0i32; 256];
        vals[0] = i32::MAX;
        let out = decode_vec(&scale_vec(&encode_vec(&vals), 2).unwrap()).unwrap();
        assert_eq!(out[0], i32::MAX.wrapping_mul(2));
    }

    #[test]
    fn matmul_identity() {
        let n = 4;
        let mut eye = vec![0i32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1;
        }
        let a: Vec<i32> = (0..(n * n) as i32).collect();
        assert_eq!(matmul_i32(&a, &eye, n), a);
        assert_eq!(matmul_i32(&eye, &a, n), a);
    }

    #[test]
    fn matmul_known_product() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let c = matmul_i32(&[1, 2, 3, 4], &[5, 6, 7, 8], 2);
        assert_eq!(c, vec![19, 22, 43, 50]);
    }

    #[test]
    fn processor_flags_malformed() {
        let p = VecScaleProcessor::default();
        assert_eq!(p.process(&[1, 2, 3]), vec![0xFF]);
    }
}
