//! # lynx-apps — application logic for the Lynx evaluation workloads
//!
//! Every server evaluated in the paper is implemented here *functionally* —
//! the algorithms really compute their results, so end-to-end simulations
//! verify payload correctness, not just timing:
//!
//! * [`nn`] — a small tensor library and a complete LeNet-5 forward pass
//!   (conv → tanh → pool ×2 → three dense layers → softmax) for the digit
//!   recognition inference server of §6.3, plus a synthetic MNIST-style
//!   digit generator.
//! * [`lbp`] — Local Binary Patterns face verification (histogram + χ²
//!   distance), the §6.4 multi-tier workload.
//! * [`kv`] — a memcached-style key-value store with LRU eviction and a
//!   compact binary protocol (the §6.3 efficiency comparison and the §6.4
//!   database tier).
//! * [`aes`] — AES-128 block encryption for the SGX secure-computing
//!   server on the Intel VCA (§6.2).
//! * [`vecscale`] — the vector-by-constant microbenchmark server and its
//!   cache-filling matrix-product noisy neighbor (§3.2).
//!
//! Each workload also provides a [`lynx_device::RequestProcessor`] with its
//! calibrated accelerator service time, ready to deploy on the simulated
//! testbed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aes;
pub mod kv;
pub mod lbp;
pub mod nn;
pub mod vecscale;
