//! Property-based tests of the application algorithms.

use proptest::prelude::*;

use lynx_apps::aes::Aes128;
use lynx_apps::kv::{self, KvStore};
use lynx_apps::lbp;
use lynx_apps::nn::{conv2d, dense, softmax, Tensor};
use lynx_apps::vecscale;

proptest! {
    /// AES-128 decrypt(encrypt(x)) == x for arbitrary keys and blocks.
    #[test]
    fn aes_roundtrip(key in proptest::array::uniform16(any::<u8>()),
                     block in proptest::array::uniform16(any::<u8>())) {
        let aes = Aes128::new(key);
        prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
    }

    /// Encryption is a permutation: two distinct blocks never collide.
    #[test]
    fn aes_injective(key in proptest::array::uniform16(any::<u8>()),
                     a in proptest::array::uniform16(any::<u8>()),
                     b in proptest::array::uniform16(any::<u8>())) {
        prop_assume!(a != b);
        let aes = Aes128::new(key);
        prop_assert_ne!(aes.encrypt_block(a), aes.encrypt_block(b));
    }

    /// KV protocol requests survive an encode/decode roundtrip.
    #[test]
    fn kv_request_roundtrip(key in proptest::collection::vec(any::<u8>(), 0..64),
                            val in proptest::collection::vec(any::<u8>(), 0..512),
                            is_set in any::<bool>()) {
        let req = if is_set {
            kv::Request::Set { key, val }
        } else {
            kv::Request::Get { key }
        };
        prop_assert_eq!(kv::Request::decode(&req.encode()), Some(req));
    }

    /// The request decoder never panics and rejects trailing garbage.
    #[test]
    fn kv_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = kv::Request::decode(&bytes);
        let _ = kv::Response::decode(&bytes);
        // Appending garbage to a valid message invalidates it.
        let valid = kv::Request::Get { key: b"k".to_vec() }.encode();
        let mut padded = valid;
        padded.extend_from_slice(&bytes);
        if !bytes.is_empty() {
            prop_assert_eq!(kv::Request::decode(&padded), None);
        }
    }

    /// The LRU store agrees with a naive most-recent-first reference
    /// model under arbitrary get/set sequences.
    #[test]
    fn kv_lru_reference_model(
        ops in proptest::collection::vec((any::<bool>(), 0u8..16, 0u8..8), 1..300)
    ) {
        const ENTRIES: usize = 4;
        let mut kv = KvStore::new(ENTRIES * 5); // key 2B + val 3B per entry
        let mut model: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (is_set, k, v) in ops {
            let key = vec![k, 0xAA];
            let val = vec![v, v, v];
            if is_set {
                kv.set(key.clone(), val.clone());
                if let Some(pos) = model.iter().position(|(mk, _)| *mk == key) {
                    model.remove(pos);
                }
                model.insert(0, (key, val));
                model.truncate(ENTRIES);
            } else {
                let got = kv.get(&key).map(|s| s.to_vec());
                let expect = model.iter().position(|(mk, _)| *mk == key).map(|pos| {
                    let entry = model.remove(pos);
                    let value = entry.1.clone();
                    model.insert(0, entry);
                    value
                });
                prop_assert_eq!(got, expect);
            }
            prop_assert_eq!(kv.len(), model.len());
        }
    }

    /// Vector scaling roundtrips and is linear in the factor sign.
    #[test]
    fn vecscale_roundtrip(vals in proptest::collection::vec(any::<i32>(), 256),
                          factor in -1000i32..1000) {
        let req = vecscale::encode_vec(&vals);
        let out = vecscale::decode_vec(&vecscale::scale_vec(&req, factor).unwrap()).unwrap();
        for (o, v) in out.iter().zip(&vals) {
            prop_assert_eq!(*o, v.wrapping_mul(factor));
        }
    }

    /// LBP histograms always count exactly the interior pixels, whatever
    /// the image content.
    #[test]
    fn lbp_histogram_mass(img in proptest::collection::vec(any::<u8>(), 1024)) {
        let h = lbp::lbp_histogram(&img, 32, 32);
        prop_assert_eq!(h.iter().map(|&c| c as u64).sum::<u64>(), 30 * 30);
    }

    /// Chi-square is a symmetric premetric: d(a,b) == d(b,a), d(a,a) == 0,
    /// and nonnegative.
    #[test]
    fn chi_square_properties(a in proptest::collection::vec(any::<u8>(), 1024),
                             b in proptest::collection::vec(any::<u8>(), 1024)) {
        let ha = lbp::lbp_histogram(&a, 32, 32);
        let hb = lbp::lbp_histogram(&b, 32, 32);
        let d_ab = lbp::chi_square(&ha, &hb);
        let d_ba = lbp::chi_square(&hb, &ha);
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!(d_ab >= 0.0);
        prop_assert_eq!(lbp::chi_square(&ha, &ha), 0.0);
    }

    /// Softmax outputs a probability distribution for any finite logits.
    #[test]
    fn softmax_distribution(logits in proptest::collection::vec(-50f32..50.0, 1..64)) {
        let out = softmax(&Tensor::vector(logits));
        let sum: f32 = out.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(out.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Convolution is linear: conv(a + b) == conv(a) + conv(b) with zero
    /// bias.
    #[test]
    fn conv_linearity(
        a in proptest::collection::vec(-2f32..2.0, 36),
        b in proptest::collection::vec(-2f32..2.0, 36),
        w in proptest::collection::vec(-1f32..1.0, 9),
    ) {
        let ta = Tensor::from_vec(1, 6, 6, a.clone());
        let tb = Tensor::from_vec(1, 6, 6, b.clone());
        let sum = Tensor::from_vec(1, 6, 6, a.iter().zip(&b).map(|(x, y)| x + y).collect());
        let ca = conv2d(&ta, &w, &[0.0], 1, 3, 1);
        let cb = conv2d(&tb, &w, &[0.0], 1, 3, 1);
        let csum = conv2d(&sum, &w, &[0.0], 1, 3, 1);
        for ((x, y), z) in ca.as_slice().iter().zip(cb.as_slice()).zip(csum.as_slice()) {
            prop_assert!((x + y - z).abs() < 1e-3, "{x} + {y} != {z}");
        }
    }

    /// Dense layers are linear too.
    #[test]
    fn dense_linearity(
        x in proptest::collection::vec(-2f32..2.0, 8),
        y in proptest::collection::vec(-2f32..2.0, 8),
        w in proptest::collection::vec(-1f32..1.0, 16),
    ) {
        let dx = dense(&Tensor::vector(x.clone()), &w, &[0.0, 0.0], 2);
        let dy = dense(&Tensor::vector(y.clone()), &w, &[0.0, 0.0], 2);
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let dsum = dense(&Tensor::vector(sum), &w, &[0.0, 0.0], 2);
        for ((a, b), c) in dx.as_slice().iter().zip(dy.as_slice()).zip(dsum.as_slice()) {
            prop_assert!((a + b - c).abs() < 1e-3);
        }
    }
}
