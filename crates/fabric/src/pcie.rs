//! PCIe fabric topology and transfer timing.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

/// Identifier of a node (device or bridge) on a PCIe fabric.
///
/// Node 0 is conventionally the host root complex; use [`NodeId::host`] for
/// readability when building single-machine topologies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The conventional host root-complex node.
    pub const fn host() -> NodeId {
        NodeId(0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Characteristics of one PCIe link (both directions symmetric).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcieLink {
    /// Usable payload bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// One-way propagation + forwarding latency of the hop.
    pub latency: Duration,
}

impl PcieLink {
    /// PCIe Gen3 ×16 (≈15.75 GB/s usable), typical GPU slot.
    pub fn gen3_x16() -> PcieLink {
        PcieLink {
            bandwidth_bps: 15.75e9,
            latency: Duration::from_nanos(350),
        }
    }

    /// PCIe Gen3 ×8 (≈7.88 GB/s usable), typical NIC slot.
    pub fn gen3_x8() -> PcieLink {
        PcieLink {
            bandwidth_bps: 7.88e9,
            latency: Duration::from_nanos(350),
        }
    }

    /// An internal switch hop (e.g. the PCIe switch inside BlueField).
    pub fn internal_switch() -> PcieLink {
        PcieLink {
            bandwidth_bps: 15.75e9,
            latency: Duration::from_nanos(150),
        }
    }
}

/// Error returned when two fabric nodes are not connected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoPathError {
    /// Source node of the failed route lookup.
    pub from: NodeId,
    /// Destination node of the failed route lookup.
    pub to: NodeId,
}

impl fmt::Display for NoPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no PCIe path from {} to {}", self.from, self.to)
    }
}

impl Error for NoPathError {}

#[derive(Debug, Default)]
struct Topology {
    names: Vec<String>,
    adj: Vec<Vec<(usize, PcieLink)>>,
    stats: PcieStats,
}

/// Cumulative transfer accounting of one [`PcieFabric`].
///
/// Every [`PcieFabric::transfer_time`] computation for a non-zero-hop path
/// is recorded here — the fabric itself has no access to the simulator, so
/// consumers (DMA engines, RDMA QPs) query the timing and this passive
/// tally, and publish it as telemetry gauges if desired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcieStats {
    /// Cross-node transfers timed so far.
    pub transfers: u64,
    /// Total bytes across those transfers.
    pub bytes: u64,
}

/// A PCIe fabric: nodes (root complex, switches, endpoints) joined by links.
///
/// The fabric answers *how long* a peer-to-peer transfer of `n` bytes takes
/// between two nodes: the sum of per-hop latencies along the (fewest-hop)
/// path plus `n` divided by the bottleneck link bandwidth. Routing uses BFS
/// and is recomputed per query — topologies here have < 20 nodes.
///
/// # Example
///
/// ```
/// use lynx_fabric::{PcieFabric, PcieLink};
/// use std::time::Duration;
///
/// let fabric = PcieFabric::new();
/// let host = fabric.add_node("host");
/// let gpu = fabric.add_node("gpu0");
/// let nic = fabric.add_node("nic");
/// fabric.link(host, gpu, PcieLink::gen3_x16());
/// fabric.link(host, nic, PcieLink::gen3_x8());
/// // NIC -> GPU p2p DMA crosses two hops through the root complex.
/// let t = fabric.transfer_time(nic, gpu, 4096).unwrap();
/// assert!(t > Duration::from_nanos(700));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PcieFabric {
    topo: Rc<RefCell<Topology>>,
}

impl PcieFabric {
    /// Creates an empty fabric.
    pub fn new() -> PcieFabric {
        PcieFabric::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&self, name: impl Into<String>) -> NodeId {
        let mut topo = self.topo.borrow_mut();
        let id = topo.names.len() as u32;
        topo.names.push(name.into());
        topo.adj.push(Vec::new());
        NodeId(id)
    }

    /// Connects two nodes with a bidirectional link.
    ///
    /// # Panics
    ///
    /// Panics if either node id does not belong to this fabric.
    pub fn link(&self, a: NodeId, b: NodeId, link: PcieLink) {
        let mut topo = self.topo.borrow_mut();
        let n = topo.names.len();
        assert!(
            (a.0 as usize) < n && (b.0 as usize) < n,
            "link endpoints must be fabric nodes"
        );
        topo.adj[a.0 as usize].push((b.0 as usize, link));
        topo.adj[b.0 as usize].push((a.0 as usize, link));
    }

    /// Returns `true` if `other` is a handle to this same fabric.
    pub fn same_fabric(&self, other: &PcieFabric) -> bool {
        Rc::ptr_eq(&self.topo, &other.topo)
    }

    /// Number of nodes in the fabric.
    pub fn node_count(&self) -> usize {
        self.topo.borrow().names.len()
    }

    /// Name of a node (for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if the node id is not part of this fabric.
    pub fn node_name(&self, id: NodeId) -> String {
        self.topo.borrow().names[id.0 as usize].clone()
    }

    /// Fewest-hop route between two nodes: total hop latency and bottleneck
    /// bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`NoPathError`] when the nodes are disconnected.
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<(Duration, f64), NoPathError> {
        if from == to {
            // Same-device access: no PCIe traversal.
            return Ok((Duration::ZERO, f64::INFINITY));
        }
        let topo = self.topo.borrow();
        let n = topo.names.len();
        let err = NoPathError { from, to };
        if from.0 as usize >= n || to.0 as usize >= n {
            return Err(err);
        }
        // BFS tracking predecessor edges.
        let mut prev: Vec<Option<(usize, PcieLink)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[from.0 as usize] = true;
        q.push_back(from.0 as usize);
        while let Some(u) = q.pop_front() {
            if u == to.0 as usize {
                break;
            }
            for &(v, link) in &topo.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = Some((u, link));
                    q.push_back(v);
                }
            }
        }
        if !seen[to.0 as usize] {
            return Err(err);
        }
        let mut latency = Duration::ZERO;
        let mut bw = f64::INFINITY;
        let mut cur = to.0 as usize;
        while let Some((p, link)) = prev[cur] {
            latency += link.latency;
            bw = bw.min(link.bandwidth_bps);
            cur = p;
        }
        Ok((latency, bw))
    }

    /// Time for a `bytes`-sized transfer between two nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NoPathError`] when the nodes are disconnected.
    pub fn transfer_time(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
    ) -> Result<Duration, NoPathError> {
        let (latency, bw) = self.route(from, to)?;
        if from != to {
            let mut topo = self.topo.borrow_mut();
            topo.stats.transfers += 1;
            topo.stats.bytes += bytes as u64;
        }
        let wire = if bw.is_finite() {
            Duration::from_secs_f64(bytes as f64 / bw)
        } else {
            Duration::ZERO
        };
        Ok(latency + wire)
    }

    /// Cumulative cross-node transfer accounting (see [`PcieStats`]).
    pub fn transfer_stats(&self) -> PcieStats {
        self.topo.borrow().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (PcieFabric, NodeId, NodeId, NodeId) {
        let f = PcieFabric::new();
        let host = f.add_node("host");
        let gpu = f.add_node("gpu");
        let nic = f.add_node("nic");
        f.link(host, gpu, PcieLink::gen3_x16());
        f.link(host, nic, PcieLink::gen3_x8());
        (f, host, gpu, nic)
    }

    #[test]
    fn same_node_is_free() {
        let (f, host, ..) = triangle();
        assert_eq!(
            f.transfer_time(host, host, 1 << 20).unwrap(),
            Duration::ZERO
        );
    }

    #[test]
    fn two_hop_path_adds_latencies_and_uses_bottleneck() {
        let (f, _, gpu, nic) = triangle();
        let (lat, bw) = f.route(nic, gpu).unwrap();
        assert_eq!(lat, Duration::from_nanos(700));
        assert_eq!(bw, 7.88e9);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let (f, host, gpu, _) = triangle();
        let small = f.transfer_time(host, gpu, 64).unwrap();
        let large = f.transfer_time(host, gpu, 1 << 20).unwrap();
        assert!(large > small);
        // 1 MiB over 15.75 GB/s ~ 66.6 us.
        assert!((large.as_secs_f64() - (1048576.0 / 15.75e9 + 350e-9)).abs() < 1e-9);
    }

    #[test]
    fn disconnected_nodes_error() {
        let f = PcieFabric::new();
        let a = f.add_node("a");
        let b = f.add_node("b");
        let err = f.route(a, b).unwrap_err();
        assert_eq!(err, NoPathError { from: a, to: b });
        assert!(err.to_string().contains("no PCIe path"));
    }

    #[test]
    fn route_prefers_fewest_hops() {
        let f = PcieFabric::new();
        let a = f.add_node("a");
        let mid = f.add_node("mid");
        let b = f.add_node("b");
        f.link(a, mid, PcieLink::internal_switch());
        f.link(mid, b, PcieLink::internal_switch());
        f.link(a, b, PcieLink::gen3_x8()); // direct: 1 hop
        let (lat, _) = f.route(a, b).unwrap();
        assert_eq!(lat, Duration::from_nanos(350));
    }

    #[test]
    fn clone_shares_topology() {
        let (f, _, gpu, nic) = triangle();
        let f2 = f.clone();
        let extra = f2.add_node("extra");
        f2.link(extra, gpu, PcieLink::gen3_x16());
        assert_eq!(f.node_count(), 4);
        assert!(f.route(extra, nic).is_ok());
    }
}
