//! DMA engines: serialized bulk copies across the PCIe fabric.

use std::fmt;
use std::time::Duration;

use lynx_sim::{Server, Sim};

use crate::{MemRegion, NodeId, PcieFabric};

/// A device DMA engine that moves bytes between memory regions over the
/// PCIe fabric.
///
/// Transfers serialize on the engine (one copy at a time, FIFO), each taking
/// an engine setup overhead plus the fabric transfer time. This reproduces
/// the copy-engine behaviour that makes `cudaMemcpyAsync` streams serialize
/// on the GPU's copy engine in the host-centric baseline.
pub struct DmaEngine {
    fabric: PcieFabric,
    node: NodeId,
    engine: Server,
    setup: Duration,
}

impl fmt::Debug for DmaEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DmaEngine")
            .field("node", &self.node)
            .field("setup", &self.setup)
            .field("jobs", &self.engine.jobs())
            .finish()
    }
}

impl DmaEngine {
    /// Creates a DMA engine owned by fabric node `node` with a fixed
    /// per-transfer setup overhead.
    pub fn new(fabric: PcieFabric, node: NodeId, setup: Duration) -> DmaEngine {
        DmaEngine {
            fabric,
            node,
            engine: Server::new(1.0),
            setup,
        }
    }

    /// The fabric node that owns this engine.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of transfers issued so far.
    pub fn transfers(&self) -> u64 {
        self.engine.jobs()
    }

    /// Copies `len` bytes from `src[src_off..]` to `dst[dst_off..]`,
    /// invoking `done` when the copy completes on the wire.
    ///
    /// The byte copy is applied at completion time (the destination is not
    /// observable in its updated state before then).
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds or if the two regions'
    /// nodes are not connected on the fabric (a topology construction bug).
    #[allow(clippy::too_many_arguments)]
    pub fn copy(
        &self,
        sim: &mut Sim,
        src: &MemRegion,
        src_off: usize,
        dst: &MemRegion,
        dst_off: usize,
        len: usize,
        done: impl FnOnce(&mut Sim) + 'static,
    ) {
        let wire = self
            .fabric
            .transfer_time(src.node(), dst.node(), len)
            .expect("DMA between disconnected fabric nodes");
        sim.count("fabric.dma.copies", 1);
        sim.count("fabric.dma.bytes", len as u64);
        let src = src.clone();
        let dst = dst.clone();
        self.engine.submit(sim, self.setup + wire, move |sim| {
            let data = src.read(src_off, len);
            dst.write(dst_off, &data);
            done(sim);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PcieLink;
    use lynx_sim::Time;
    use std::cell::Cell;
    use std::rc::Rc;

    fn setup() -> (Sim, DmaEngine, MemRegion, MemRegion) {
        let sim = Sim::new(0);
        let fabric = PcieFabric::new();
        let host = fabric.add_node("host");
        let gpu = fabric.add_node("gpu");
        fabric.link(host, gpu, PcieLink::gen3_x16());
        let src = MemRegion::new(host, 1024, "host-buf");
        let dst = MemRegion::new(gpu, 1024, "gpu-buf");
        let dma = DmaEngine::new(fabric, host, Duration::from_nanos(500));
        (sim, dma, src, dst)
    }

    #[test]
    fn copy_moves_bytes_at_completion() {
        let (mut sim, dma, src, dst) = setup();
        src.write(0, b"hello lynx");
        let done_at = Rc::new(Cell::new(Time::ZERO));
        let d = Rc::clone(&done_at);
        dma.copy(&mut sim, &src, 0, &dst, 16, 10, move |sim| {
            d.set(sim.now());
        });
        // Not yet visible.
        assert_eq!(dst.read(16, 10), vec![0; 10]);
        sim.run();
        assert_eq!(dst.read(16, 10), b"hello lynx");
        // 500ns setup + 350ns hop + 10B wire time.
        assert!(done_at.get() >= Time::from_nanos(850));
    }

    #[test]
    fn transfers_serialize_on_engine() {
        let (mut sim, dma, src, dst) = setup();
        let t1 = Rc::new(Cell::new(Time::ZERO));
        let t2 = Rc::new(Cell::new(Time::ZERO));
        let (a, b) = (Rc::clone(&t1), Rc::clone(&t2));
        dma.copy(&mut sim, &src, 0, &dst, 0, 512, move |sim| a.set(sim.now()));
        dma.copy(&mut sim, &src, 0, &dst, 512, 512, move |sim| {
            b.set(sim.now())
        });
        sim.run();
        assert!(t2.get() > t1.get());
        assert_eq!(dma.transfers(), 2);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_copy_panics() {
        let mut sim = Sim::new(0);
        let fabric = PcieFabric::new();
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let src = MemRegion::new(a, 8, "src");
        let dst = MemRegion::new(b, 8, "dst");
        let dma = DmaEngine::new(fabric, a, Duration::ZERO);
        dma.copy(&mut sim, &src, 0, &dst, 0, 8, |_| {});
    }
}
