//! # lynx-fabric — PCIe fabric, DMA and RDMA models
//!
//! The Lynx paper's data plane is built from three hardware mechanisms, all
//! reproduced here as deterministic simulation models:
//!
//! * **PCIe peer-to-peer DMA** ([`PcieFabric`], [`DmaEngine`]) — devices on
//!   the same fabric (SmartNIC, GPU, host DRAM) move data without host CPU
//!   involvement. Transfer time = per-hop latency + size / bottleneck-lane
//!   bandwidth, serialized on the issuing DMA engine.
//! * **One-sided RDMA** ([`RdmaNic`], [`QueuePair`]) — the SmartNIC accesses
//!   mqueues in accelerator memory via RDMA READ/WRITE on a Reliable
//!   Connection QP (§5.1 of the paper: one RC QP per accelerator, all
//!   mqueues of an accelerator share it). Writes on one QP complete in
//!   order, which the mqueue doorbell protocol relies on.
//! * **Memory access mechanisms** ([`xfer`]) — cost models for the three
//!   ways of reaching accelerator memory compared in Figure 5:
//!   `cudaMemcpyAsync`, `gdrcopy`, and one-sided RDMA.
//!
//! Data movement is *functional*: bytes really move between [`MemRegion`]s,
//! so end-to-end tests can verify payload integrity through the whole
//! simulated machine.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod dma;
mod mem;
mod pcie;
mod rdma;
pub mod xfer;

pub use dma::DmaEngine;
pub use mem::MemRegion;
pub use pcie::{NoPathError, NodeId, PcieFabric, PcieLink, PcieStats};
pub use rdma::{CqeError, QpKind, QueuePair, RdmaNic, WireProfile};
