//! One-sided RDMA: NICs, queue pairs, ordered remote memory access.
//!
//! Lynx uses RDMA in exactly one place (§4.2 of the paper): the SmartNIC's
//! *Remote Message Queue Manager* reads and writes mqueues that live in
//! accelerator memory. Locally this is a loopback through the NIC ASIC and a
//! peer-to-peer PCIe DMA; for remote accelerators the same verbs traverse
//! the network to the accelerator's own RDMA NIC. Both paths share this
//! model, differing only in their [`WireProfile`].

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use lynx_sim::telemetry::SiteCounter;
use lynx_sim::{FaultAction, Payload, Server, Sim};

use crate::{MemRegion, NodeId, PcieFabric};

/// A verb completed with an error CQE instead of taking effect.
///
/// Produced only by injected faults (site `rdma.write.<region>` /
/// `rdma.read.<region>`, action `CqeError` — see `lynx_sim::faults`). The
/// verb still consumed queue-pair occupancy and wire time, but the target
/// memory was never touched (writes) or never sampled (reads).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CqeError {
    /// Verb kind: `"write"` or `"read"`.
    pub verb: &'static str,
    /// Name of the memory region the verb targeted.
    pub region: String,
}

impl fmt::Display for CqeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RDMA {} to region '{}' completed in error",
            self.verb, self.region
        )
    }
}

impl std::error::Error for CqeError {}

/// InfiniBand queue-pair transport kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QpKind {
    /// Reliable Connection: ordered, supports one-sided READ and WRITE.
    /// Lynx creates one RC QP per accelerator (§5.1).
    ReliableConnection,
    /// Unreliable Connection: WRITE only, needs receiver-side refill. Used
    /// by the NICA-based Innova prototype's custom rings (§5.2).
    UnreliableConnection,
}

/// Timing profile of the path between an RDMA NIC and a peer NIC.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireProfile {
    /// One-way propagation latency NIC-to-NIC (zero for loopback).
    pub latency: Duration,
    /// Wire bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// NIC ASIC processing time per work-queue element.
    pub per_wqe: Duration,
}

impl WireProfile {
    /// Loopback through the local NIC ASIC (SmartNIC to a local accelerator
    /// behind the same root complex). ConnectX-class ASICs sustain ~10 M
    /// one-sided ops/s per QP, hence 100 ns per WQE.
    pub fn loopback() -> WireProfile {
        WireProfile {
            latency: Duration::from_nanos(600),
            bandwidth_bps: 10.0e9,
            per_wqe: Duration::from_nanos(100),
        }
    }

    /// A 40 Gbps network crossing through one switch (the paper's Mellanox
    /// SN2100 testbed). Remote accelerator access adds ~2 µs one-way,
    /// matching the paper's "+8 µs per request" for remote GPUs once the
    /// request write and response read round-trip are accounted for.
    pub fn network_40g() -> WireProfile {
        WireProfile {
            latency: Duration::from_micros(2),
            bandwidth_bps: 5.0e9,
            per_wqe: Duration::from_nanos(100),
        }
    }

    /// The earliest a one-sided verb on this wire can land at the peer:
    /// propagation plus one WQE of NIC processing, before any
    /// serialization or PCIe hop.
    ///
    /// This lower bound is what a partitioned simulation uses as the
    /// conservative lookahead for a cross-shard RDMA path — no completion
    /// can cross the wire faster, so it is a safe
    /// [`lynx_sim::Partition::link`] latency when the two NICs live on
    /// different shards.
    pub fn min_one_way(&self) -> Duration {
        self.latency + self.per_wqe
    }
}

#[derive(Debug, Default)]
struct QpStats {
    writes: u64,
    reads: u64,
    bytes: u64,
}

/// Interned `fabric.rdma.*` counter handles, cached per queue pair so the
/// per-verb hot path indexes the registry instead of walking it by name.
#[derive(Debug, Default)]
struct QpSites {
    writes: SiteCounter,
    reads: SiteCounter,
    doorbells: SiteCounter,
    bytes: SiteCounter,
    cqe_errors: SiteCounter,
    barriers: SiteCounter,
}

/// An RDMA-capable NIC attached to a PCIe fabric node.
///
/// The NIC provides [`QueuePair`]s. Each QP serializes its own work queue
/// (RDMA ordering guarantee on RC QPs); distinct QPs proceed independently.
#[derive(Clone)]
pub struct RdmaNic {
    fabric: PcieFabric,
    node: NodeId,
    name: Rc<str>,
}

impl fmt::Debug for RdmaNic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RdmaNic")
            .field("name", &self.name)
            .field("node", &self.node)
            .finish()
    }
}

impl RdmaNic {
    /// Creates an RDMA NIC on fabric node `node`.
    pub fn new(fabric: PcieFabric, node: NodeId, name: impl Into<Rc<str>>) -> RdmaNic {
        RdmaNic {
            fabric,
            node,
            name: name.into(),
        }
    }

    /// The fabric node this NIC occupies.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The PCIe fabric this NIC is attached to.
    pub fn fabric(&self) -> PcieFabric {
        self.fabric.clone()
    }

    /// Creates a queue pair whose remote end is the NIC at `dst_nic` on
    /// `dst_fabric` (pass this NIC's own fabric and node for loopback).
    pub fn create_qp(
        &self,
        kind: QpKind,
        wire: WireProfile,
        dst_fabric: PcieFabric,
        dst_nic: NodeId,
    ) -> QueuePair {
        QueuePair {
            kind,
            wire,
            dst_fabric,
            dst_nic,
            queue: Server::new(1.0),
            stats: Rc::new(RefCell::new(QpStats::default())),
            sites: Rc::new(QpSites::default()),
        }
    }

    /// Convenience: loopback RC QP for reaching local accelerator memory.
    pub fn loopback_qp(&self) -> QueuePair {
        self.create_qp(
            QpKind::ReliableConnection,
            WireProfile::loopback(),
            self.fabric.clone(),
            self.node,
        )
    }
}

/// An RDMA queue pair: an ordered pipe of one-sided verbs.
///
/// Completion order equals posting order (RC semantics). Posting itself is
/// free — the *issuing CPU's* cost (< 1 µs per `ibv_post_send`, per the
/// paper's §5.1 discussion) must be charged by the caller on its own core
/// model; this type models the NIC and wire side.
#[derive(Clone)]
pub struct QueuePair {
    kind: QpKind,
    wire: WireProfile,
    dst_fabric: PcieFabric,
    dst_nic: NodeId,
    queue: Server,
    stats: Rc<RefCell<QpStats>>,
    sites: Rc<QpSites>,
}

impl fmt::Debug for QueuePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats.borrow();
        f.debug_struct("QueuePair")
            .field("kind", &self.kind)
            .field("writes", &s.writes)
            .field("reads", &s.reads)
            .field("bytes", &s.bytes)
            .finish()
    }
}

impl QueuePair {
    /// Transport kind of this QP.
    pub fn kind(&self) -> QpKind {
        self.kind
    }

    /// Total (writes, reads, bytes) posted so far.
    pub fn stats(&self) -> (u64, u64, u64) {
        let s = self.stats.borrow();
        (s.writes, s.reads, s.bytes)
    }

    fn landing_delay(&self, dst_node: NodeId, bytes: usize) -> (Duration, Duration) {
        let occupancy =
            self.wire.per_wqe + Duration::from_secs_f64(bytes as f64 / self.wire.bandwidth_bps);
        let pcie = self
            .dst_fabric
            .transfer_time(self.dst_nic, dst_node, bytes)
            .expect("RDMA target not reachable from its NIC");
        (occupancy, self.wire.latency + pcie)
    }

    /// Posts a one-sided RDMA WRITE of `data` into `dst[dst_off..]`.
    ///
    /// The bytes become visible in `dst` and `done` runs when the write
    /// lands. Writes posted on the same QP land in posting order. `data`
    /// is any [`Payload`]-convertible payload; passing a `Payload` handle the
    /// caller retains for retries costs an `Rc` bump, not a copy.
    ///
    /// # Panics
    ///
    /// Panics if the destination range is out of bounds or the target node
    /// is unreachable from the QP's remote NIC.
    pub fn post_write(
        &self,
        sim: &mut Sim,
        data: impl Into<Payload>,
        dst: &MemRegion,
        dst_off: usize,
        done: impl FnOnce(&mut Sim) + 'static,
    ) {
        self.post_write_checked(sim, data, dst, dst_off, move |sim, result| {
            // Unchecked legacy path: an injected CQE error silently drops
            // the completion callback (the write never landed).
            if result.is_ok() {
                done(sim);
            }
        });
    }

    /// [`QueuePair::post_write`] with an explicit completion status.
    ///
    /// `done` receives `Ok(())` when the write landed, or
    /// `Err(`[`CqeError`]`)` when an armed fault plan struck the verb (site
    /// `rdma.write.<region name>`, action `CqeError`). An errored write
    /// consumes occupancy and wire time like a successful one but leaves
    /// the destination memory untouched; a `Delay` fault models a PCIe
    /// stall, stretching the landing time. With no fault plan armed this
    /// behaves exactly like `post_write` with `Ok` status.
    pub fn post_write_checked(
        &self,
        sim: &mut Sim,
        data: impl Into<Payload>,
        dst: &MemRegion,
        dst_off: usize,
        done: impl FnOnce(&mut Sim, Result<(), CqeError>) + 'static,
    ) {
        let data = data.into();
        let (occupancy, mut delay) = self.landing_delay(dst.node(), data.len());
        let mut cqe: Option<CqeError> = None;
        if sim.faults_enabled() {
            match sim.fault_at(&format!("rdma.write.{}", dst.name())) {
                Some(FaultAction::CqeError) => {
                    cqe = Some(CqeError {
                        verb: "write",
                        region: dst.name().to_string(),
                    });
                }
                Some(FaultAction::Delay(stall)) => delay += stall,
                _ => {}
            }
        }
        {
            let mut s = self.stats.borrow_mut();
            s.writes += 1;
            s.bytes += data.len() as u64;
        }
        if let Some(t) = sim.telemetry() {
            self.sites.writes.add(t, "fabric.rdma.writes", 1);
            self.sites.doorbells.add(t, "fabric.rdma.doorbells", 1);
            self.sites
                .bytes
                .add(t, "fabric.rdma.bytes", data.len() as u64);
            if cqe.is_some() {
                self.sites.cqe_errors.add(t, "fabric.rdma.cqe_errors", 1);
            }
        }
        let dst = dst.clone();
        self.queue.submit(sim, occupancy, move |sim| {
            sim.schedule_in(delay, move |sim| match cqe {
                None => {
                    dst.write(dst_off, &data);
                    done(sim, Ok(()));
                }
                Some(err) => done(sim, Err(err)),
            });
        });
    }

    /// Posts a *chained* one-sided RDMA WRITE: every `(offset, bytes)` span
    /// in `spans` is a separate work-queue element, but the whole chain is
    /// issued with a **single doorbell** and charges the NIC ASIC only one
    /// `per_wqe` slot — this is the verb-coalescing that amortizes
    /// per-message RDMA cost in the batched SNIC pipeline (cf. the paper's
    /// doorbell-batching discussion).
    ///
    /// Fault injection is evaluated **per span** at site
    /// `rdma.write.<region>`: a `CqeError` fault skips that span's memory
    /// write only; the rest of the chain still lands (RDMA WRITEs carry no
    /// inter-WQE dependency). `done` runs once, when the chain completes,
    /// with one `Result` per span in posting order — the batched CQE
    /// completion fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `spans` is empty, a destination range is out of bounds, or
    /// the target node is unreachable from the QP's remote NIC.
    pub fn post_write_vectored<B: Into<Payload>>(
        &self,
        sim: &mut Sim,
        spans: Vec<(usize, B)>,
        dst: &MemRegion,
        done: impl FnOnce(&mut Sim, Vec<Result<(), CqeError>>) + 'static,
    ) {
        assert!(!spans.is_empty(), "vectored write needs at least one span");
        let spans: Vec<(usize, Payload)> =
            spans.into_iter().map(|(off, d)| (off, d.into())).collect();
        let total: usize = spans.iter().map(|(_, d)| d.len()).sum();
        let (occupancy, mut delay) = self.landing_delay(dst.node(), total);
        // Per-span fault check: each WQE in the chain is its own fault
        // site hit, so Trigger::Nth counts identically to unbatched posts
        // and a struck verb retries only its own span.
        let mut cqes: Vec<Option<CqeError>> = Vec::with_capacity(spans.len());
        for _ in &spans {
            let mut cqe = None;
            if sim.faults_enabled() {
                match sim.fault_at(&format!("rdma.write.{}", dst.name())) {
                    Some(FaultAction::CqeError) => {
                        cqe = Some(CqeError {
                            verb: "write",
                            region: dst.name().to_string(),
                        });
                    }
                    Some(FaultAction::Delay(stall)) => delay += stall,
                    _ => {}
                }
            }
            cqes.push(cqe);
        }
        {
            let mut s = self.stats.borrow_mut();
            s.writes += spans.len() as u64;
            s.bytes += total as u64;
        }
        if let Some(t) = sim.telemetry() {
            self.sites
                .writes
                .add(t, "fabric.rdma.writes", spans.len() as u64);
            self.sites.doorbells.add(t, "fabric.rdma.doorbells", 1);
            self.sites.bytes.add(t, "fabric.rdma.bytes", total as u64);
            let errors = cqes.iter().filter(|c| c.is_some()).count() as u64;
            if errors > 0 {
                self.sites
                    .cqe_errors
                    .add(t, "fabric.rdma.cqe_errors", errors);
            }
        }
        let dst = dst.clone();
        self.queue.submit(sim, occupancy, move |sim| {
            sim.schedule_in(delay, move |sim| {
                let mut results = Vec::with_capacity(spans.len());
                for ((off, data), cqe) in spans.into_iter().zip(cqes) {
                    match cqe {
                        None => {
                            dst.write(off, &data);
                            results.push(Ok(()));
                        }
                        Some(err) => results.push(Err(err)),
                    }
                }
                done(sim, results);
            });
        });
    }

    /// Posts a one-sided RDMA READ of `len` bytes from `src[src_off..]`.
    ///
    /// `done` receives the bytes (as a shared [`Payload`] buffer) as they
    /// were at the moment the read reached the target memory. Total
    /// latency is a full round trip.
    ///
    /// # Panics
    ///
    /// Panics if called on an [`QpKind::UnreliableConnection`] QP (UC does
    /// not support RDMA READ), if the source range is out of bounds, or if
    /// the target node is unreachable.
    pub fn post_read(
        &self,
        sim: &mut Sim,
        src: &MemRegion,
        src_off: usize,
        len: usize,
        done: impl FnOnce(&mut Sim, Payload) + 'static,
    ) {
        self.post_read_checked(sim, src, src_off, len, move |sim, result| {
            // Unchecked legacy path: an injected CQE error silently drops
            // the completion callback (the data never arrived).
            if let Ok(data) = result {
                done(sim, data);
            }
        });
    }

    /// [`QueuePair::post_read`] with an explicit completion status.
    ///
    /// `done` receives the bytes, or `Err(`[`CqeError`]`)` when an armed
    /// fault plan struck the verb (site `rdma.read.<region name>`, action
    /// `CqeError`). An errored read still takes the full round trip but
    /// never samples the source memory; a `Delay` fault stretches both
    /// legs' landing time. With no fault plan armed this behaves exactly
    /// like `post_read` with `Ok` status.
    ///
    /// # Panics
    ///
    /// Panics if called on an [`QpKind::UnreliableConnection`] QP.
    pub fn post_read_checked(
        &self,
        sim: &mut Sim,
        src: &MemRegion,
        src_off: usize,
        len: usize,
        done: impl FnOnce(&mut Sim, Result<Payload, CqeError>) + 'static,
    ) {
        assert!(
            self.kind == QpKind::ReliableConnection,
            "RDMA READ requires a Reliable Connection QP"
        );
        let (occupancy, mut delay) = self.landing_delay(src.node(), len);
        let mut cqe: Option<CqeError> = None;
        if sim.faults_enabled() {
            match sim.fault_at(&format!("rdma.read.{}", src.name())) {
                Some(FaultAction::CqeError) => {
                    cqe = Some(CqeError {
                        verb: "read",
                        region: src.name().to_string(),
                    });
                }
                Some(FaultAction::Delay(stall)) => delay += stall,
                _ => {}
            }
        }
        {
            let mut s = self.stats.borrow_mut();
            s.reads += 1;
            s.bytes += len as u64;
        }
        if let Some(t) = sim.telemetry() {
            self.sites.reads.add(t, "fabric.rdma.reads", 1);
            self.sites.doorbells.add(t, "fabric.rdma.doorbells", 1);
            self.sites.bytes.add(t, "fabric.rdma.bytes", len as u64);
            if cqe.is_some() {
                self.sites.cqe_errors.add(t, "fabric.rdma.cqe_errors", 1);
            }
        }
        let src = src.clone();
        self.queue.submit(sim, occupancy, move |sim| {
            // Request reaches the target after `delay`; data is sampled
            // there and returns after another `delay`.
            sim.schedule_in(delay, move |sim| match cqe {
                None => {
                    let data = Payload::from(src.read(src_off, len));
                    sim.schedule_in(delay, move |sim| done(sim, Ok(data)));
                }
                Some(err) => sim.schedule_in(delay, move |sim| done(sim, Err(err))),
            });
        });
    }

    /// Posts a *chained* one-sided RDMA READ: every `(offset, len)` span is
    /// its own work-queue element but the chain is issued with a **single
    /// doorbell** and one `per_wqe` ASIC slot, and completes in one round
    /// trip. The read-side analogue of [`QueuePair::post_write_vectored`].
    ///
    /// Fault injection is evaluated per span at site `rdma.read.<region>`;
    /// a struck span returns `Err(`[`CqeError`]`)` in its slot while the
    /// other spans return their data. `done` runs once with one `Result`
    /// per span in posting order.
    ///
    /// # Panics
    ///
    /// Panics if `spans` is empty, if called on an
    /// [`QpKind::UnreliableConnection`] QP, if a source range is out of
    /// bounds, or if the target node is unreachable.
    pub fn post_read_vectored(
        &self,
        sim: &mut Sim,
        src: &MemRegion,
        spans: Vec<(usize, usize)>,
        done: impl FnOnce(&mut Sim, Vec<Result<Payload, CqeError>>) + 'static,
    ) {
        assert!(
            self.kind == QpKind::ReliableConnection,
            "RDMA READ requires a Reliable Connection QP"
        );
        assert!(!spans.is_empty(), "vectored read needs at least one span");
        let total: usize = spans.iter().map(|(_, len)| len).sum();
        let (occupancy, mut delay) = self.landing_delay(src.node(), total);
        let mut cqes: Vec<Option<CqeError>> = Vec::with_capacity(spans.len());
        for _ in &spans {
            let mut cqe = None;
            if sim.faults_enabled() {
                match sim.fault_at(&format!("rdma.read.{}", src.name())) {
                    Some(FaultAction::CqeError) => {
                        cqe = Some(CqeError {
                            verb: "read",
                            region: src.name().to_string(),
                        });
                    }
                    Some(FaultAction::Delay(stall)) => delay += stall,
                    _ => {}
                }
            }
            cqes.push(cqe);
        }
        {
            let mut s = self.stats.borrow_mut();
            s.reads += spans.len() as u64;
            s.bytes += total as u64;
        }
        if let Some(t) = sim.telemetry() {
            self.sites
                .reads
                .add(t, "fabric.rdma.reads", spans.len() as u64);
            self.sites.doorbells.add(t, "fabric.rdma.doorbells", 1);
            self.sites.bytes.add(t, "fabric.rdma.bytes", total as u64);
            let errors = cqes.iter().filter(|c| c.is_some()).count() as u64;
            if errors > 0 {
                self.sites
                    .cqe_errors
                    .add(t, "fabric.rdma.cqe_errors", errors);
            }
        }
        let src = src.clone();
        self.queue.submit(sim, occupancy, move |sim| {
            sim.schedule_in(delay, move |sim| {
                let results: Vec<Result<Payload, CqeError>> = spans
                    .into_iter()
                    .zip(cqes)
                    .map(|((off, len), cqe)| match cqe {
                        None => Ok(Payload::from(src.read(off, len))),
                        Some(err) => Err(err),
                    })
                    .collect();
                sim.schedule_in(delay, move |sim| done(sim, results));
            });
        });
    }

    /// Posts a zero-byte READ used as a write barrier — the GPU memory
    /// consistency workaround of §5.1 (an RDMA read flushes preceding
    /// writes). Unlike a plain read, the barrier *fences* the queue pair:
    /// work posted after it cannot start until the read's round trip
    /// completes, which is what makes the workaround cost ~5 µs per
    /// message in the paper.
    pub fn post_barrier(
        &self,
        sim: &mut Sim,
        probe: &MemRegion,
        done: impl FnOnce(&mut Sim) + 'static,
    ) {
        let (occupancy, delay) = self.landing_delay(probe.node(), 0);
        self.stats.borrow_mut().reads += 1;
        if let Some(t) = sim.telemetry() {
            self.sites.barriers.add(t, "fabric.rdma.barriers", 1);
            self.sites.doorbells.add(t, "fabric.rdma.doorbells", 1);
        }
        // The round trip is charged as QP occupancy: the pipe stalls.
        self.queue.submit(sim, occupancy + delay * 2, done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PcieLink;
    use lynx_sim::Time;
    use std::cell::Cell;
    use std::rc::Rc;

    fn rig() -> (Sim, RdmaNic, MemRegion) {
        let sim = Sim::new(0);
        let fabric = PcieFabric::new();
        let host = fabric.add_node("host");
        let nic = fabric.add_node("nic");
        let gpu = fabric.add_node("gpu");
        fabric.link(host, nic, PcieLink::gen3_x8());
        fabric.link(host, gpu, PcieLink::gen3_x16());
        let rnic = RdmaNic::new(fabric, nic, "cx5");
        let gpu_mem = MemRegion::new(gpu, 4096, "gpu-mem");
        (sim, rnic, gpu_mem)
    }

    #[test]
    fn write_lands_with_payload() {
        let (mut sim, nic, gpu_mem) = rig();
        let qp = nic.loopback_qp();
        let landed = Rc::new(Cell::new(Time::ZERO));
        let l = Rc::clone(&landed);
        qp.post_write(&mut sim, b"request".to_vec(), &gpu_mem, 100, move |sim| {
            l.set(sim.now());
        });
        assert_eq!(gpu_mem.read(100, 7), vec![0; 7]);
        sim.run();
        assert_eq!(gpu_mem.read(100, 7), b"request");
        // per_wqe 100ns + wire + 600ns loopback + 700ns two PCIe hops.
        assert!(landed.get() > Time::from_nanos(1_300));
        assert!(landed.get() < Time::from_micros(3));
    }

    #[test]
    fn writes_on_one_qp_stay_ordered() {
        let (mut sim, nic, gpu_mem) = rig();
        let qp = nic.loopback_qp();
        // Data write then doorbell write: doorbell must land second.
        qp.post_write(&mut sim, vec![0xAA; 64], &gpu_mem, 0, |_| {});
        let gm = gpu_mem.clone();
        qp.post_write(&mut sim, vec![1], &gpu_mem, 512, move |_| {
            // When the doorbell lands, the data must already be there.
            assert_eq!(gm.read(0, 64), vec![0xAA; 64]);
        });
        sim.run();
        assert_eq!(gpu_mem.read(512, 1), vec![1]);
    }

    #[test]
    fn read_returns_snapshot_after_round_trip() {
        let (mut sim, nic, gpu_mem) = rig();
        gpu_mem.write(0, b"resp");
        let qp = nic.loopback_qp();
        let got = Rc::new(RefCell::new(Payload::new()));
        let g = Rc::clone(&got);
        let write_landed = Rc::new(Cell::new(Time::ZERO));
        let read_done = Rc::new(Cell::new(Time::ZERO));
        let wl = Rc::clone(&write_landed);
        qp.post_write(&mut sim, vec![9], &gpu_mem, 64, move |sim| {
            wl.set(sim.now())
        });
        let rd = Rc::clone(&read_done);
        qp.post_read(&mut sim, &gpu_mem, 0, 4, move |sim, data| {
            *g.borrow_mut() = data;
            rd.set(sim.now());
        });
        sim.run();
        assert_eq!(got.borrow()[..], b"resp"[..]);
        // Read is a round trip: completes strictly after the one-way write.
        assert!(read_done.get() > write_landed.get());
    }

    #[test]
    #[should_panic(expected = "Reliable Connection")]
    fn uc_qp_rejects_read() {
        let (mut sim, nic, gpu_mem) = rig();
        let qp = nic.create_qp(
            QpKind::UnreliableConnection,
            WireProfile::loopback(),
            // Same-fabric loopback.
            nic.fabric.clone(),
            nic.node(),
        );
        qp.post_read(&mut sim, &gpu_mem, 0, 4, |_, _| {});
    }

    #[test]
    fn stats_track_ops() {
        let (mut sim, nic, gpu_mem) = rig();
        let qp = nic.loopback_qp();
        qp.post_write(&mut sim, vec![0; 100], &gpu_mem, 0, |_| {});
        qp.post_read(&mut sim, &gpu_mem, 0, 50, |_, _| {});
        sim.run();
        assert_eq!(qp.stats(), (1, 1, 150));
    }

    #[test]
    fn injected_cqe_error_skips_memory_but_costs_time() {
        use lynx_sim::{FaultPlan, Trigger};
        let (mut sim, nic, gpu_mem) = rig();
        sim.enable_faults(FaultPlan::new(0).rule(
            "rdma.write.gpu-mem",
            Trigger::Nth(1),
            FaultAction::CqeError,
        ));
        sim.enable_telemetry();
        let qp = nic.loopback_qp();
        let outcome = Rc::new(RefCell::new(None));
        let o = Rc::clone(&outcome);
        let completed = Rc::new(Cell::new(Time::ZERO));
        let c = Rc::clone(&completed);
        qp.post_write_checked(&mut sim, vec![7; 16], &gpu_mem, 0, move |sim, r| {
            *o.borrow_mut() = Some(r);
            c.set(sim.now());
        });
        sim.run();
        let err = outcome.borrow_mut().take().unwrap().unwrap_err();
        assert_eq!(err.verb, "write");
        assert_eq!(err.region, "gpu-mem");
        // Memory untouched, but the verb consumed wire time.
        assert_eq!(gpu_mem.read(0, 16), vec![0; 16]);
        assert!(completed.get() > Time::from_nanos(1_300));
        assert_eq!(
            sim.telemetry().unwrap().counter("fabric.rdma.cqe_errors"),
            1
        );
        assert_eq!(
            sim.telemetry()
                .unwrap()
                .counter("faults.injected.cqe_error"),
            1
        );
    }

    #[test]
    fn injected_read_error_completes_without_data() {
        use lynx_sim::{FaultPlan, Trigger};
        let (mut sim, nic, gpu_mem) = rig();
        gpu_mem.write(0, b"resp");
        sim.enable_faults(FaultPlan::new(0).rule(
            "rdma.read.",
            Trigger::Nth(1),
            FaultAction::CqeError,
        ));
        let qp = nic.loopback_qp();
        let got = Rc::new(RefCell::new(None));
        let g = Rc::clone(&got);
        qp.post_read_checked(&mut sim, &gpu_mem, 0, 4, move |_, r| {
            *g.borrow_mut() = Some(r);
        });
        sim.run();
        assert!(got.borrow().as_ref().unwrap().is_err());
    }

    #[test]
    fn injected_pcie_stall_delays_landing() {
        use lynx_sim::{FaultPlan, Trigger};
        let run = |stall_us: u64| {
            let (mut sim, nic, gpu_mem) = rig();
            if stall_us > 0 {
                sim.enable_faults(FaultPlan::new(0).rule(
                    "rdma.write.",
                    Trigger::Nth(1),
                    FaultAction::Delay(Duration::from_micros(stall_us)),
                ));
            }
            let qp = nic.loopback_qp();
            let landed = Rc::new(Cell::new(Time::ZERO));
            let l = Rc::clone(&landed);
            qp.post_write(&mut sim, vec![1; 8], &gpu_mem, 0, move |sim| {
                l.set(sim.now());
            });
            sim.run();
            landed.get()
        };
        let clean = run(0);
        let stalled = run(25);
        assert_eq!(stalled, clean + Duration::from_micros(25));
    }

    #[test]
    fn vectored_write_lands_all_spans_with_one_doorbell() {
        let (mut sim, nic, gpu_mem) = rig();
        sim.enable_telemetry();
        let qp = nic.loopback_qp();
        let done = Rc::new(RefCell::new(Vec::new()));
        let d = Rc::clone(&done);
        qp.post_write_vectored(
            &mut sim,
            vec![(0, b"aaaa".to_vec()), (64, b"bb".to_vec())],
            &gpu_mem,
            move |_, results| *d.borrow_mut() = results,
        );
        sim.run();
        assert_eq!(gpu_mem.read(0, 4), b"aaaa");
        assert_eq!(gpu_mem.read(64, 2), b"bb");
        assert!(done.borrow().iter().all(|r| r.is_ok()));
        let t = sim.telemetry().unwrap();
        assert_eq!(t.counter("fabric.rdma.doorbells"), 1);
        assert_eq!(t.counter("fabric.rdma.writes"), 2);
        assert_eq!(qp.stats(), (2, 0, 6));
    }

    #[test]
    fn vectored_read_returns_per_span_results() {
        let (mut sim, nic, gpu_mem) = rig();
        sim.enable_telemetry();
        gpu_mem.write(0, b"head");
        gpu_mem.write(128, b"tail");
        let qp = nic.loopback_qp();
        let done = Rc::new(RefCell::new(Vec::new()));
        let d = Rc::clone(&done);
        qp.post_read_vectored(&mut sim, &gpu_mem, vec![(0, 4), (128, 4)], move |_, r| {
            *d.borrow_mut() = r;
        });
        sim.run();
        let got = done.borrow();
        assert_eq!(got[0].as_ref().unwrap(), b"head");
        assert_eq!(got[1].as_ref().unwrap(), b"tail");
        assert_eq!(sim.telemetry().unwrap().counter("fabric.rdma.doorbells"), 1);
    }

    #[test]
    fn vectored_write_fault_strikes_one_span_only() {
        use lynx_sim::{FaultPlan, Trigger};
        let (mut sim, nic, gpu_mem) = rig();
        // Second WQE of the chain errors; first still lands.
        sim.enable_faults(FaultPlan::new(0).rule(
            "rdma.write.gpu-mem",
            Trigger::Nth(2),
            FaultAction::CqeError,
        ));
        let qp = nic.loopback_qp();
        let done = Rc::new(RefCell::new(Vec::new()));
        let d = Rc::clone(&done);
        qp.post_write_vectored(
            &mut sim,
            vec![(0, vec![1; 8]), (64, vec![2; 8]), (200, vec![3; 8])],
            &gpu_mem,
            move |_, results| *d.borrow_mut() = results,
        );
        sim.run();
        let got = done.borrow();
        assert!(got[0].is_ok());
        assert!(got[1].is_err());
        assert!(got[2].is_ok());
        assert_eq!(gpu_mem.read(0, 8), vec![1; 8]);
        assert_eq!(
            gpu_mem.read(64, 8),
            vec![0; 8],
            "faulted span must not land"
        );
        assert_eq!(gpu_mem.read(200, 8), vec![3; 8]);
    }

    #[test]
    fn vectored_write_matches_chain_timing() {
        // A 2-span chain completes no later than two separate posts: it
        // saves one per_wqe ASIC slot.
        let (mut sim, nic, gpu_mem) = rig();
        let qp = nic.loopback_qp();
        let t_chain = Rc::new(Cell::new(Time::ZERO));
        let tc = Rc::clone(&t_chain);
        qp.post_write_vectored(
            &mut sim,
            vec![(0, vec![1; 256]), (256, vec![2; 256])],
            &gpu_mem,
            move |sim, _| tc.set(sim.now()),
        );
        sim.run();
        let (mut sim2, nic2, gpu_mem2) = rig();
        let qp2 = nic2.loopback_qp();
        let t_sep = Rc::new(Cell::new(Time::ZERO));
        qp2.post_write(&mut sim2, vec![1; 256], &gpu_mem2, 0, |_| {});
        let ts = Rc::clone(&t_sep);
        qp2.post_write(&mut sim2, vec![2; 256], &gpu_mem2, 256, move |sim| {
            ts.set(sim.now())
        });
        sim2.run();
        assert!(t_chain.get() < t_sep.get());
    }

    #[test]
    fn network_profile_is_slower_than_loopback() {
        let (mut sim, nic, gpu_mem) = rig();
        let local = nic.loopback_qp();
        let remote = nic.create_qp(
            QpKind::ReliableConnection,
            WireProfile::network_40g(),
            nic.fabric.clone(),
            nic.node(),
        );
        let (t_local, t_remote) = (
            Rc::new(Cell::new(Time::ZERO)),
            Rc::new(Cell::new(Time::ZERO)),
        );
        let (a, b) = (Rc::clone(&t_local), Rc::clone(&t_remote));
        local.post_write(&mut sim, vec![0; 64], &gpu_mem, 0, move |sim| {
            a.set(sim.now())
        });
        remote.post_write(&mut sim, vec![0; 64], &gpu_mem, 64, move |sim| {
            b.set(sim.now())
        });
        sim.run();
        assert!(t_remote.get() > t_local.get() + Duration::from_micros(1));
    }
}
