//! Device memory regions.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::NodeId;

/// A byte-addressable memory region residing on a PCIe fabric node.
///
/// Regions model accelerator local memory (GPU global memory exposed via a
/// PCIe BAR, per §4.4 of the paper), host DRAM, or SmartNIC-local buffers.
/// The region is a cheap `Rc` handle — clones alias the same bytes, exactly
/// like two PCIe peers referencing the same physical memory.
///
/// Data access is functional and instantaneous; *timing* is charged by the
/// engine performing the access ([`crate::DmaEngine`], [`crate::QueuePair`],
/// or a CPU model).
///
/// # Example
///
/// ```
/// use lynx_fabric::{MemRegion, NodeId};
///
/// let m = MemRegion::new(NodeId::host(), 64, "gpu0-ring");
/// m.write(8, &[1, 2, 3]);
/// assert_eq!(m.read(8, 3), vec![1, 2, 3]);
/// ```
#[derive(Clone)]
pub struct MemRegion {
    bytes: Rc<RefCell<Vec<u8>>>,
    node: NodeId,
    name: Rc<str>,
}

impl fmt::Debug for MemRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemRegion")
            .field("name", &self.name)
            .field("node", &self.node)
            .field("len", &self.len())
            .finish()
    }
}

impl MemRegion {
    /// Allocates a zeroed region of `len` bytes on fabric node `node`.
    pub fn new(node: NodeId, len: usize, name: impl Into<Rc<str>>) -> MemRegion {
        MemRegion {
            bytes: Rc::new(RefCell::new(vec![0; len])),
            node,
            name: name.into(),
        }
    }

    /// The PCIe fabric node this memory physically resides on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Human-readable region name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size of the region in bytes.
    pub fn len(&self) -> usize {
        self.bytes.borrow().len()
    }

    /// Returns `true` for a zero-length region.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies `len` bytes starting at `offset` out of the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` exceeds the region size.
    pub fn read(&self, offset: usize, len: usize) -> Vec<u8> {
        let bytes = self.bytes.borrow();
        self.check_range(offset, len);
        bytes[offset..offset + len].to_vec()
    }

    /// Copies bytes from the region into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + buf.len()` exceeds the region size.
    pub fn read_into(&self, offset: usize, buf: &mut [u8]) {
        let bytes = self.bytes.borrow();
        self.check_range(offset, buf.len());
        buf.copy_from_slice(&bytes[offset..offset + buf.len()]);
    }

    /// Writes `data` into the region starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + data.len()` exceeds the region size.
    pub fn write(&self, offset: usize, data: &[u8]) {
        self.check_range(offset, data.len());
        let mut bytes = self.bytes.borrow_mut();
        bytes[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Reads a little-endian `u32` (doorbell/status registers).
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the region size.
    pub fn read_u32(&self, offset: usize) -> u32 {
        let mut b = [0u8; 4];
        self.read_into(offset, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 4` exceeds the region size.
    pub fn write_u32(&self, offset: usize, v: u32) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds the region size.
    pub fn read_u64(&self, offset: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read_into(offset, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `offset + 8` exceeds the region size.
    pub fn write_u64(&self, offset: usize, v: u64) {
        self.write(offset, &v.to_le_bytes());
    }

    /// Zeroes the whole region.
    pub fn clear(&self) {
        self.bytes.borrow_mut().iter_mut().for_each(|b| *b = 0);
    }

    /// Returns `true` if `other` aliases the same underlying memory.
    pub fn same_region(&self, other: &MemRegion) -> bool {
        Rc::ptr_eq(&self.bytes, &other.bytes)
    }

    fn check_range(&self, offset: usize, len: usize) {
        let size = self.bytes.borrow().len();
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= size),
            "access [{offset}, {offset}+{len}) out of bounds for region '{}' of {size} bytes",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(len: usize) -> MemRegion {
        MemRegion::new(NodeId::host(), len, "test")
    }

    #[test]
    fn read_write_roundtrip() {
        let m = region(32);
        m.write(4, b"lynx");
        assert_eq!(m.read(4, 4), b"lynx");
        // Other bytes stay zero.
        assert_eq!(m.read(0, 4), vec![0; 4]);
    }

    #[test]
    fn scalar_accessors() {
        let m = region(16);
        m.write_u32(0, 0xdead_beef);
        m.write_u64(8, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u32(0), 0xdead_beef);
        assert_eq!(m.read_u64(8), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn clones_alias_same_bytes() {
        let a = region(8);
        let b = a.clone();
        a.write(0, &[7]);
        assert_eq!(b.read(0, 1), vec![7]);
        assert!(a.same_region(&b));
        assert!(!a.same_region(&region(8)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        region(4).write(2, &[0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        region(4).read(4, 1);
    }

    #[test]
    fn overflow_offset_panics_cleanly() {
        let m = region(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.read(usize::MAX, 2);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn clear_zeroes() {
        let m = region(4);
        m.write(0, &[1, 2, 3, 4]);
        m.clear();
        assert_eq!(m.read(0, 4), vec![0; 4]);
    }
}
