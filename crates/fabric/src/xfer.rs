//! Accelerator-memory access mechanisms (Figure 5 of the paper).
//!
//! The paper compares three ways for the entity running the Lynx dispatcher
//! to read/write mqueues residing in GPU memory:
//!
//! * **`cudaMemcpyAsync`** — a driver call with a 7–8 µs constant overhead
//!   that dominates small transfers (§5.1, Figure 5 discussion).
//! * **`gdrcopy`** — mapped BAR accesses issued directly by CPU stores.
//!   Cheap to start but *blocking*: the issuing core stalls until the PCIe
//!   writes retire, and bandwidth is poor, "on the critical path of the
//!   Message Dispatcher".
//! * **one-sided RDMA** — posted to the NIC in < 1 µs of CPU time; the NIC
//!   ASIC moves the data asynchronously. This is the mechanism Lynx adopts.
//!
//! [`Mechanism::cost`] returns both the CPU occupancy and the data landing
//! latency so server models can charge the right resource.

use std::fmt;
use std::time::Duration;

/// One mechanism for accessing accelerator memory from the dispatcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// `cudaMemcpyAsync` through the CUDA driver.
    CudaMemcpyAsync,
    /// `gdrcopy`-style mapped BAR stores from the CPU.
    GdrCopy,
    /// One-sided RDMA posted to the local NIC.
    Rdma,
}

impl Mechanism {
    /// All mechanisms, in the order Figure 5 presents them.
    pub const ALL: [Mechanism; 3] = [
        Mechanism::CudaMemcpyAsync,
        Mechanism::GdrCopy,
        Mechanism::Rdma,
    ];
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Mechanism::CudaMemcpyAsync => "CuMemcpyAsync",
            Mechanism::GdrCopy => "gdrcopy",
            Mechanism::Rdma => "RDMA",
        };
        f.write_str(name)
    }
}

/// Cost of one access with a given mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessCost {
    /// Time the issuing CPU core is occupied (blocking portion).
    pub cpu: Duration,
    /// Time until the data is visible in accelerator memory.
    pub latency: Duration,
}

/// Calibration constants, each annotated with its source in the paper.
mod calib {
    use std::time::Duration;

    /// "cudaMemcpyAsync incurs a constant overhead of 7-8 µs" (§5.1).
    pub const CUDA_MEMCPY_FIXED: Duration = Duration::from_nanos(7_500);
    /// Driver-managed copies stream at roughly PCIe Gen3 x16 rate.
    pub const CUDA_MEMCPY_BPS: f64 = 10.0e9;
    /// gdrcopy setup: a handful of stores and a fence.
    pub const GDRCOPY_FIXED: Duration = Duration::from_nanos(200);
    /// The blocking PCIe round trip of a fenced BAR store sequence.
    pub const GDRCOPY_FLUSH: Duration = Duration::from_nanos(1_300);
    /// Write-combined BAR store bandwidth is poor (~0.8 GB/s).
    pub const GDRCOPY_BPS: f64 = 0.8e9;
    /// "IB RDMA requires less than 1 µs to invoke by the CPU" (§5.1).
    pub const RDMA_POST: Duration = Duration::from_nanos(900);
    /// NIC-side landing latency for a small RDMA (loopback + 2 PCIe hops).
    pub const RDMA_LANDING: Duration = Duration::from_nanos(1_400);
    /// NIC DMA bandwidth.
    pub const RDMA_BPS: f64 = 10.0e9;
}

impl Mechanism {
    /// Cost of moving `bytes` to/from accelerator memory with this
    /// mechanism.
    pub fn cost(self, bytes: usize) -> AccessCost {
        let wire = |bps: f64| Duration::from_secs_f64(bytes as f64 / bps);
        match self {
            Mechanism::CudaMemcpyAsync => AccessCost {
                // The driver call itself occupies the CPU for the fixed
                // overhead; the copy engine streams the bytes.
                cpu: calib::CUDA_MEMCPY_FIXED,
                latency: calib::CUDA_MEMCPY_FIXED + wire(calib::CUDA_MEMCPY_BPS),
            },
            Mechanism::GdrCopy => {
                // The CPU performs (and waits out) every store itself.
                let busy = calib::GDRCOPY_FIXED + calib::GDRCOPY_FLUSH + wire(calib::GDRCOPY_BPS);
                AccessCost {
                    cpu: busy,
                    latency: busy,
                }
            }
            Mechanism::Rdma => AccessCost {
                cpu: calib::RDMA_POST,
                latency: calib::RDMA_POST + calib::RDMA_LANDING + wire(calib::RDMA_BPS),
            },
        }
    }

    /// CPU occupancy for a 4-byte control-register (doorbell) update.
    pub fn control_cost(self) -> AccessCost {
        self.cost(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_has_cheapest_cpu_cost_for_small_transfers() {
        let bytes = 20;
        let rdma = Mechanism::Rdma.cost(bytes).cpu;
        assert!(rdma < Mechanism::GdrCopy.cost(bytes).cpu);
        assert!(rdma < Mechanism::CudaMemcpyAsync.cost(bytes).cpu);
    }

    #[test]
    fn cuda_memcpy_fixed_cost_dominates_small_transfers() {
        let small = Mechanism::CudaMemcpyAsync.cost(4);
        let big = Mechanism::CudaMemcpyAsync.cost(1416);
        // CPU cost is size-independent; latency grows only slightly.
        assert_eq!(small.cpu, big.cpu);
        assert!(big.latency < small.latency * 2);
    }

    #[test]
    fn gdrcopy_blocks_cpu_for_full_transfer() {
        let c = Mechanism::GdrCopy.cost(1416);
        assert_eq!(c.cpu, c.latency);
        // 1416 B at 0.8 GB/s adds ~1.8 us of blocking stores.
        assert!(c.cpu > Duration::from_nanos(3_000));
    }

    #[test]
    fn costs_are_monotonic_in_size() {
        for mech in Mechanism::ALL {
            let a = mech.cost(16);
            let b = mech.cost(4096);
            assert!(b.latency >= a.latency, "{mech}");
            assert!(b.cpu >= a.cpu, "{mech}");
        }
    }

    #[test]
    fn display_names_match_figure5_labels() {
        assert_eq!(Mechanism::CudaMemcpyAsync.to_string(), "CuMemcpyAsync");
        assert_eq!(Mechanism::GdrCopy.to_string(), "gdrcopy");
        assert_eq!(Mechanism::Rdma.to_string(), "RDMA");
    }
}
